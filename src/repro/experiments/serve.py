"""Selection-service client mix — many tenants, warm graphs, live edits.

The harness stands up a :class:`~repro.service.SelectionService` over
the paper's applications (:func:`repro.workflow.serve_selection`) and
drives a synthetic multi-tenant mix against it: tenant threads submit
interleaved queries drawn from the paper's four specifications plus
deterministic variants, while graph edits land between batches and
version-bump exactly the edited graph's warm state.

Run with ``python -m repro.experiments.serve``; ``--check`` turns the
run into a correctness smoke test (non-zero exit unless every batched
result is bit-identical to its sequential re-derivation, nothing fails,
batching actually engages, and an edit observably changes a result),
which CI uses.

``--check-faults`` is the supervision gate: for every preset in
:data:`~repro.service.faults.SERVICE_FAULT_SCENARIOS` it stands up a
sharded supervised service, drives a multi-tenant wave through the
injected chaos, and requires the scenario to *heal* — every future
resolves (result, cancellation, or typed error), the planned faults
demonstrably fired, the service keeps serving, and a post-recovery
sweep answers bit-identically to a fault-free reference service over
the same graphs.
"""

from __future__ import annotations

import argparse
import random
import threading
import time
from dataclasses import dataclass

from repro._util import format_table
from repro.apps import PAPER_SPECS
from repro.cg.graph import NodeMeta
from repro.errors import QuarantinedSpecError, ReproError
from repro.experiments.runner import DEFAULT_SCALES, prepare_app
from repro.service.faults import SERVICE_FAULT_SCENARIOS
from repro.workflow import serve_selection

#: spec sources the mix draws from: the paper's four plus deterministic
#: variants — flops thresholds and a reachability query that visibly
#: changes when an edit grafts a node under ``main``
EXTRA_SPECS: dict[str, str] = {
    "flops>=1": 'flops(">=", 1, %%)',
    "flops>=25": 'flops(">=", 25, %%)',
    "reach-main": 'onCallPathFrom(byName("main", %%))',
    "hot-reachable": (
        'intersect(onCallPathFrom(byName("main", %%)), '
        'flops(">=", 10, loopDepth(">=", 1, %%)))'
    ),
}


def spec_mix() -> dict[str, str]:
    """Name → source for the full synthetic query mix."""
    mix = dict(PAPER_SPECS)
    mix.update(EXTRA_SPECS)
    return mix


def _graft_node(index: int):
    """A graph edit adding a hot kernel under ``main``.

    The new node carries flops and a loop, so it lands in the
    ``kernels``/``reach-main`` selections — the post-edit result set
    provably differs from the pre-edit one.
    """

    def mutate(graph) -> None:
        name = f"svc_edit_{index}"
        graph.add_node(
            name,
            NodeMeta(flops=64, loop_depth=2, statements=12, has_body=True),
        )
        graph.add_edge("main", name)

    return mutate


@dataclass(frozen=True)
class ServeReport:
    """One client-mix run, condensed for the table and ``--check``."""

    apps: tuple[str, ...]
    tenants: int
    requests: int
    responses: int
    failures: int
    edits: int
    batches: int
    mean_batch_size: float
    max_batch_size: int
    deduped: int
    cross_hits: int
    warm_hit_rate: float
    invalidations: int
    requests_per_second: float
    mean_latency_seconds: float
    #: every batched result re-derived sequentially inside the service
    verified: bool
    #: some (graph, spec) pair returned different results across an edit
    result_changed_after_edit: bool


def run_service_mix(
    apps: tuple[str, ...] = ("lulesh",),
    *,
    scales: dict[str, int] | None = None,
    tenants: int = 8,
    requests_per_tenant: int = 12,
    edit_every: int = 10,
    window_seconds: float = 0.02,
    max_batch: int = 64,
    seed: int = 0,
    verify: bool = False,
    shards: int = 1,
) -> ServeReport:
    """Drive the synthetic client mix and return the condensed report.

    Phase 1 releases all tenant threads at once (mixed specs over mixed
    graphs, an edit interleaved every ``edit_every`` submissions).
    Phase 2 is deterministic: snapshot ``reach-main`` per graph, graft a
    node under ``main``, snapshot again — proving the version bump
    invalidated exactly that graph's warm results.
    """
    scales = scales or DEFAULT_SCALES
    # uncached builds: the mix *mutates* its graphs, and the process-wide
    # prepare_app cache must keep serving pristine apps to everyone else
    prepared = [
        prepare_app.__wrapped__(name, scales.get(name)) for name in apps
    ]
    mix = spec_mix()
    spec_names = sorted(mix)
    service = serve_selection(
        {p.name: p.app for p in prepared},
        window_seconds=window_seconds,
        max_batch=max_batch,
        verify=verify,
        shards=shards,
        seed=seed,
    )
    graph_keys = [p.name for p in prepared]
    edit_counter = threading.Lock()
    edit_state = {"submitted": 0, "index": 0}

    def maybe_edit(rng: random.Random) -> None:
        if not edit_every:
            return
        with edit_counter:
            edit_state["submitted"] += 1
            if edit_state["submitted"] % edit_every:
                return
            edit_state["index"] += 1
            index = edit_state["index"]
        service.submit_edit(rng.choice(graph_keys), _graft_node(index))

    failures: list[BaseException] = []
    failures_lock = threading.Lock()

    def tenant_worker(tenant_id: int) -> None:
        rng = random.Random(seed * 7919 + tenant_id)
        futures = []
        for _ in range(requests_per_tenant):
            name = rng.choice(spec_names)
            futures.append(
                service.submit(
                    rng.choice(graph_keys),
                    mix[name],
                    tenant=f"tenant-{tenant_id}",
                    spec_name=name,
                )
            )
            maybe_edit(rng)
        for future in futures:
            try:
                future.result(timeout=60.0)
            except BaseException as exc:  # noqa: BLE001 - collected
                with failures_lock:
                    failures.append(exc)

    try:
        threads = [
            threading.Thread(target=tenant_worker, args=(t,))
            for t in range(tenants)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # deterministic invalidation proof, per graph
        changed = False
        for key in graph_keys:
            before = service.select(
                key, mix["reach-main"], tenant="prober", spec_name="reach-main"
            )
            with edit_counter:
                edit_state["index"] += 1
                index = edit_state["index"]
            service.edit(key, _graft_node(index))
            after = service.select(
                key, mix["reach-main"], tenant="prober", spec_name="reach-main"
            )
            if after.graph_version <= before.graph_version:
                raise AssertionError(
                    f"edit did not bump {key!r}'s graph version"
                )
            if frozenset(after.selection.selected) != frozenset(
                before.selection.selected
            ):
                changed = True
        stats = service.stats_snapshot()
    finally:
        service.close()

    if failures:
        raise failures[0]
    return ServeReport(
        apps=tuple(apps),
        tenants=tenants,
        requests=stats["requests"],
        responses=stats["responses"],
        failures=stats["failures"],
        edits=stats["edits"],
        batches=stats["batches"],
        mean_batch_size=stats["mean_batch_size"],
        max_batch_size=stats["max_batch_size"],
        deduped=stats["deduped"],
        cross_hits=stats["cross_hits"],
        warm_hit_rate=stats["store"]["hit_rate"],
        invalidations=stats["store"]["invalidations"],
        requests_per_second=stats["requests_per_second"],
        mean_latency_seconds=stats["mean_latency_seconds"],
        verified=verify,
        result_changed_after_edit=changed,
    )


def render_serve_report(report: ServeReport) -> str:
    headers = [
        "apps", "tenants", "req", "resp", "fail", "edits",
        "batches", "mean", "max", "dedup", "xhits",
        "warm", "inval", "req/s", "lat(ms)",
    ]
    body = [(
        "+".join(report.apps),
        str(report.tenants),
        str(report.requests),
        str(report.responses),
        str(report.failures),
        str(report.edits),
        str(report.batches),
        f"{report.mean_batch_size:.1f}",
        str(report.max_batch_size),
        str(report.deduped),
        str(report.cross_hits),
        f"{100 * report.warm_hit_rate:.0f}%",
        str(report.invalidations),
        f"{report.requests_per_second:.0f}",
        f"{1000 * report.mean_latency_seconds:.2f}",
    )]
    title = (
        "SELECTION SERVICE — multi-tenant client mix "
        "(batched, warm store, live edits)"
    )
    return format_table(headers, body, title=title)


def check_report(report: ServeReport) -> list[str]:
    """The ``--check`` contract; empty list means the run is good."""
    problems = []
    if report.failures:
        problems.append(f"{report.failures} request(s) failed")
    if report.responses != report.requests:
        problems.append(
            f"answered {report.responses} of {report.requests} requests"
        )
    if not report.verified:
        problems.append("verify mode was off — bit-identity not re-derived")
    if report.max_batch_size < 2:
        problems.append("batching never engaged (max batch size < 2)")
    if not report.result_changed_after_edit:
        problems.append("no result changed across a graph edit")
    if not report.invalidations:
        problems.append("edits never invalidated a warm store entry")
    return problems


@dataclass(frozen=True)
class FaultDrillReport:
    """One chaos scenario driven to (attempted) recovery."""

    scenario: str
    requests: int
    #: futures that resolved with an answer
    answered: int
    #: futures resolved by cancellation (the injected client race)
    cancelled: int
    #: futures resolved with a typed ``ReproError``
    typed_failures: int
    #: futures that never resolved — any non-zero value fails the gate
    unresolved: int
    restarts: int
    wedges: int
    retried: int
    contained_groups: int
    quarantine_opened: int
    quarantine_fast_fails: int
    lost: int
    #: per-kind count of faults that actually fired
    injected: dict
    #: post-recovery sweep matched the fault-free reference, per query
    recovered_identical: bool
    still_serving: bool

    @property
    def healed(self) -> bool:
        """The scenario's acceptance contract (see ``fault_drill_problems``)."""
        return not fault_drill_problems(self)


#: fault kinds each scenario plans — the drill requires at least one of
#: each to actually fire, so a green gate can't be an injection no-op
_SCENARIO_KINDS: dict[str, tuple[str, ...]] = {
    "compile-error": ("compile",),
    "eval-crash": ("eval",),
    "worker-hang": ("hang",),
    "worker-death": ("death",),
    "cancel-race": ("cancel",),
    "poison-spec": (),
}


def fault_drill_problems(report: FaultDrillReport) -> list[str]:
    """Why a drill does *not* count as healed; empty list means it does."""
    problems = []
    if report.unresolved:
        problems.append(f"{report.unresolved} future(s) never resolved")
    if not report.still_serving:
        problems.append("service stopped serving after the fault wave")
    if not report.recovered_identical:
        problems.append(
            "post-recovery answers differ from the fault-free reference"
        )
    if report.lost:
        problems.append(
            f"{report.lost} request(s) exhausted the retry budget"
        )
    for kind in _SCENARIO_KINDS.get(report.scenario, ()):
        if not report.injected.get(kind):
            problems.append(f"planned {kind!r} fault never fired")
    if report.scenario == "poison-spec":
        if not report.quarantine_opened:
            problems.append("poison spec never tripped the quarantine breaker")
        if not report.quarantine_fast_fails:
            problems.append("quarantine never failed a request fast")
    elif report.typed_failures:
        problems.append(
            f"{report.typed_failures} typed failure(s) in a transient-only "
            f"scenario (all should have healed via retry)"
        )
    if report.scenario == "cancel-race" and not report.cancelled:
        problems.append("cancellation race never cancelled a future")
    return problems


def _drill_graphs(app: str, nodes: "int | None") -> dict:
    """Independent, structurally identical graphs for a multi-shard drill.

    Each key gets its *own* graph object (a graph may only be owned by
    one shard), built from the same deterministic generator so every
    key answers every spec identically — which is what lets the drill
    compare faulted and fault-free services query by query.
    """
    return {
        f"{app}#{i}": prepare_app.__wrapped__(app, nodes).app
        for i in range(4)
    }


def run_fault_drill(
    scenario: str,
    *,
    app: str = "lulesh",
    nodes: "int | None" = None,
    tenants: int = 4,
    requests_per_tenant: int = 12,
    shards: int = 2,
    seed: int = 0,
) -> FaultDrillReport:
    """Drive one chaos preset through fault, recovery, and verification."""
    fault_spec = SERVICE_FAULT_SCENARIOS[scenario]
    keyed = _drill_graphs(app, nodes)
    graph_keys = sorted(keyed)
    mix = spec_mix()
    spec_names = sorted(mix)

    # fault-free reference answers, computed on an unsupervised
    # single-worker service over graphs built by the same generator
    reference: dict[tuple[str, str], frozenset] = {}
    with serve_selection(
        _drill_graphs(app, nodes), window_seconds=0.0, supervised=False
    ) as plain:
        for key in graph_keys:
            for name in spec_names:
                response = plain.select(key, mix[name], spec_name=name)
                reference[(key, name)] = frozenset(
                    response.selection.selected
                )

    service = serve_selection(
        keyed,
        window_seconds=0.0,
        max_batch=8,
        shards=shards,
        seed=seed,
        faults=fault_spec,
        shard_deadline_seconds=0.15,
        supervise_interval=0.02,
        quarantine_cooldown_seconds=0.05,
    )
    try:
        rng = random.Random(seed * 6271 + 17)
        futures = []
        for t in range(tenants):
            for _ in range(requests_per_tenant):
                name = rng.choice(spec_names)
                futures.append(
                    (
                        service.submit(
                            rng.choice(graph_keys),
                            mix[name],
                            tenant=f"tenant-{t}",
                            spec_name=name,
                        ),
                        name,
                    )
                )
        answered = cancelled = typed = unresolved = 0
        for future, _ in futures:
            try:
                future.result(timeout=30.0)
                answered += 1
            except TimeoutError:
                unresolved += 1
            except ReproError:
                typed += 1
            except BaseException:  # noqa: BLE001 - CancelledError et al.
                cancelled += 1

        # flush phase: a short main wave may not have reached every
        # planned injection index (round-scoped kinds especially), so
        # keep feeding sacrificial queries until the whole schedule has
        # fired — the verification sweep must run against an exhausted
        # injector, not race it
        affected = [
            i
            for i in range(shards)
            if not fault_spec.only_shards or i in fault_spec.only_shards
        ]
        planned = {
            "compile": fault_spec.compile_errors * len(affected),
            "eval": fault_spec.eval_crashes * len(affected),
            "hang": fault_spec.hangs * len(affected),
            "death": fault_spec.deaths * len(affected),
            "cancel": fault_spec.cancel_races * len(affected),
        }
        flush_deadline = time.monotonic() + 30.0

        def schedule_exhausted() -> bool:
            injected = service.stats_snapshot()["health"]["injected"]
            return all(
                injected.get(kind, 0) >= count
                for kind, count in planned.items()
            )

        while (
            not schedule_exhausted() and time.monotonic() < flush_deadline
        ):
            flushers = [
                service.submit(
                    key, mix["flops>=1"], tenant="flush", spec_name="flops>=1"
                )
                for key in graph_keys
            ]
            for flusher in flushers:
                try:
                    flusher.result(timeout=10.0)
                except BaseException:  # noqa: BLE001 - sacrificial
                    pass

        # drive the quarantine breaker through open → half-open →
        # closed on *every* shard: keep probing the poisoned query on
        # each graph key until it heals everywhere
        poison_recovered = True
        if fault_spec.poison_specs:
            marker = fault_spec.poison_specs[0]
            probe_deadline = time.monotonic() + 30.0
            pending_keys = set(graph_keys)
            while pending_keys and time.monotonic() < probe_deadline:
                for key in sorted(pending_keys):
                    try:
                        service.select(
                            key, mix[marker], spec_name=marker, timeout=10.0
                        )
                        pending_keys.discard(key)
                    except QuarantinedSpecError:
                        pass
                    except ReproError:
                        pass
                if pending_keys:
                    time.sleep(0.02)
            poison_recovered = not pending_keys

        # post-recovery sweep: the injection schedule is exhausted, so
        # every (graph, spec) pair must answer bit-identically to the
        # fault-free reference
        still_serving = True
        identical = poison_recovered
        for key in graph_keys:
            for name in spec_names:
                try:
                    response = service.select(
                        key, mix[name], spec_name=name, timeout=30.0
                    )
                except BaseException:  # noqa: BLE001 - gate evidence
                    still_serving = False
                    identical = False
                    break
                if (
                    frozenset(response.selection.selected)
                    != reference[(key, name)]
                ):
                    identical = False
            else:
                continue
            break
        stats = service.stats_snapshot()
    finally:
        service.close()

    health = stats["health"]
    quarantine = health["quarantine"] or {}
    return FaultDrillReport(
        scenario=scenario,
        requests=len(futures),
        answered=answered,
        cancelled=cancelled,
        typed_failures=typed,
        unresolved=unresolved,
        restarts=health["restarts"],
        wedges=health["wedges"],
        retried=stats["retried"],
        contained_groups=stats["contained_groups"],
        quarantine_opened=quarantine.get("opened_total", 0),
        quarantine_fast_fails=quarantine.get("fast_fails", 0),
        lost=health["lost"],
        injected=dict(health["injected"]),
        recovered_identical=identical,
        still_serving=still_serving,
    )


def run_fault_drills(
    scenarios: "tuple[str, ...] | None" = None,
    *,
    app: str = "lulesh",
    nodes: "int | None" = None,
    shards: int = 2,
    seed: int = 0,
) -> list[FaultDrillReport]:
    names = scenarios or tuple(sorted(SERVICE_FAULT_SCENARIOS))
    return [
        run_fault_drill(name, app=app, nodes=nodes, shards=shards, seed=seed)
        for name in names
    ]


def render_fault_drills(reports: list[FaultDrillReport]) -> str:
    headers = [
        "scenario", "req", "ok", "cancel", "typed", "unres",
        "restarts", "retried", "contained", "quar", "fastfail",
        "lost", "identical", "healed",
    ]
    body = [
        (
            r.scenario,
            str(r.requests),
            str(r.answered),
            str(r.cancelled),
            str(r.typed_failures),
            str(r.unresolved),
            str(r.restarts),
            str(r.retried),
            str(r.contained_groups),
            str(r.quarantine_opened),
            str(r.quarantine_fast_fails),
            str(r.lost),
            "yes" if r.recovered_identical else "NO",
            "yes" if r.healed else "NO",
        )
        for r in reports
    ]
    title = (
        "SELECTION SERVICE — chaos drill "
        "(sharded workers, supervisor, quarantine)"
    )
    return format_table(headers, body, title=title)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--app", choices=["lulesh", "openfoam", "both"], default="lulesh"
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="override the per-app call-graph size (smoke runs use a "
        "few hundred nodes)",
    )
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=12, help="queries per tenant"
    )
    parser.add_argument(
        "--edit-every",
        type=int,
        default=10,
        help="interleave a graph edit every N submissions (0 disables)",
    )
    parser.add_argument(
        "--window", type=float, default=0.02,
        help="micro-batch window in seconds",
    )
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker shards (graph keys are hash-partitioned across them)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify every batched result against its sequential "
        "re-derivation and exit non-zero on any failure",
    )
    parser.add_argument(
        "--check-faults",
        action="store_true",
        help="run every service chaos preset through a supervised "
        "sharded service and exit non-zero unless all of them heal",
    )
    args = parser.parse_args(argv)
    apps = ("lulesh", "openfoam") if args.app == "both" else (args.app,)
    if args.check_faults:
        drill_app = apps[0]
        reports = run_fault_drills(
            app=drill_app,
            nodes=args.nodes,
            shards=max(2, args.shards),
            seed=args.seed,
        )
        print(render_fault_drills(reports))
        failed = False
        for report in reports:
            for problem in fault_drill_problems(report):
                print(f"FAULT CHECK FAILED [{report.scenario}]: {problem}")
                failed = True
        if failed:
            return 1
        print(
            f"FAULT CHECK OK: {len(reports)} chaos scenario(s) healed — "
            f"every future resolved and post-recovery answers matched the "
            f"fault-free reference"
        )
        return 0
    scales = None
    if args.nodes is not None:
        scales = {name: args.nodes for name in apps}
    report = run_service_mix(
        apps,
        scales=scales,
        tenants=args.tenants,
        requests_per_tenant=args.requests,
        edit_every=args.edit_every,
        window_seconds=args.window,
        max_batch=args.max_batch,
        seed=args.seed,
        verify=args.check,
        shards=args.shards,
    )
    print(render_serve_report(report))
    if args.check:
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}")
            return 1
        print(
            f"CHECK OK: {report.responses} batched responses bit-identical "
            f"to sequential evaluation across {report.edits} live edit(s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
