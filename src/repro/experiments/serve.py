"""Selection-service client mix — many tenants, warm graphs, live edits.

The harness stands up a :class:`~repro.service.SelectionService` over
the paper's applications (:func:`repro.workflow.serve_selection`) and
drives a synthetic multi-tenant mix against it: tenant threads submit
interleaved queries drawn from the paper's four specifications plus
deterministic variants, while graph edits land between batches and
version-bump exactly the edited graph's warm state.

Run with ``python -m repro.experiments.serve``; ``--check`` turns the
run into a correctness smoke test (non-zero exit unless every batched
result is bit-identical to its sequential re-derivation, nothing fails,
batching actually engages, and an edit observably changes a result),
which CI uses.
"""

from __future__ import annotations

import argparse
import random
import threading
from dataclasses import dataclass

from repro._util import format_table
from repro.apps import PAPER_SPECS
from repro.cg.graph import NodeMeta
from repro.experiments.runner import DEFAULT_SCALES, prepare_app
from repro.workflow import serve_selection

#: spec sources the mix draws from: the paper's four plus deterministic
#: variants — flops thresholds and a reachability query that visibly
#: changes when an edit grafts a node under ``main``
EXTRA_SPECS: dict[str, str] = {
    "flops>=1": 'flops(">=", 1, %%)',
    "flops>=25": 'flops(">=", 25, %%)',
    "reach-main": 'onCallPathFrom(byName("main", %%))',
    "hot-reachable": (
        'intersect(onCallPathFrom(byName("main", %%)), '
        'flops(">=", 10, loopDepth(">=", 1, %%)))'
    ),
}


def spec_mix() -> dict[str, str]:
    """Name → source for the full synthetic query mix."""
    mix = dict(PAPER_SPECS)
    mix.update(EXTRA_SPECS)
    return mix


def _graft_node(index: int):
    """A graph edit adding a hot kernel under ``main``.

    The new node carries flops and a loop, so it lands in the
    ``kernels``/``reach-main`` selections — the post-edit result set
    provably differs from the pre-edit one.
    """

    def mutate(graph) -> None:
        name = f"svc_edit_{index}"
        graph.add_node(
            name,
            NodeMeta(flops=64, loop_depth=2, statements=12, has_body=True),
        )
        graph.add_edge("main", name)

    return mutate


@dataclass(frozen=True)
class ServeReport:
    """One client-mix run, condensed for the table and ``--check``."""

    apps: tuple[str, ...]
    tenants: int
    requests: int
    responses: int
    failures: int
    edits: int
    batches: int
    mean_batch_size: float
    max_batch_size: int
    deduped: int
    cross_hits: int
    warm_hit_rate: float
    invalidations: int
    requests_per_second: float
    mean_latency_seconds: float
    #: every batched result re-derived sequentially inside the service
    verified: bool
    #: some (graph, spec) pair returned different results across an edit
    result_changed_after_edit: bool


def run_service_mix(
    apps: tuple[str, ...] = ("lulesh",),
    *,
    scales: dict[str, int] | None = None,
    tenants: int = 8,
    requests_per_tenant: int = 12,
    edit_every: int = 10,
    window_seconds: float = 0.02,
    max_batch: int = 64,
    seed: int = 0,
    verify: bool = False,
) -> ServeReport:
    """Drive the synthetic client mix and return the condensed report.

    Phase 1 releases all tenant threads at once (mixed specs over mixed
    graphs, an edit interleaved every ``edit_every`` submissions).
    Phase 2 is deterministic: snapshot ``reach-main`` per graph, graft a
    node under ``main``, snapshot again — proving the version bump
    invalidated exactly that graph's warm results.
    """
    scales = scales or DEFAULT_SCALES
    # uncached builds: the mix *mutates* its graphs, and the process-wide
    # prepare_app cache must keep serving pristine apps to everyone else
    prepared = [
        prepare_app.__wrapped__(name, scales.get(name)) for name in apps
    ]
    mix = spec_mix()
    spec_names = sorted(mix)
    service = serve_selection(
        {p.name: p.app for p in prepared},
        window_seconds=window_seconds,
        max_batch=max_batch,
        verify=verify,
    )
    graph_keys = [p.name for p in prepared]
    edit_counter = threading.Lock()
    edit_state = {"submitted": 0, "index": 0}

    def maybe_edit(rng: random.Random) -> None:
        if not edit_every:
            return
        with edit_counter:
            edit_state["submitted"] += 1
            if edit_state["submitted"] % edit_every:
                return
            edit_state["index"] += 1
            index = edit_state["index"]
        service.submit_edit(rng.choice(graph_keys), _graft_node(index))

    failures: list[BaseException] = []
    failures_lock = threading.Lock()

    def tenant_worker(tenant_id: int) -> None:
        rng = random.Random(seed * 7919 + tenant_id)
        futures = []
        for _ in range(requests_per_tenant):
            name = rng.choice(spec_names)
            futures.append(
                service.submit(
                    rng.choice(graph_keys),
                    mix[name],
                    tenant=f"tenant-{tenant_id}",
                    spec_name=name,
                )
            )
            maybe_edit(rng)
        for future in futures:
            try:
                future.result(timeout=60.0)
            except BaseException as exc:  # noqa: BLE001 - collected
                with failures_lock:
                    failures.append(exc)

    try:
        threads = [
            threading.Thread(target=tenant_worker, args=(t,))
            for t in range(tenants)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # deterministic invalidation proof, per graph
        changed = False
        for key in graph_keys:
            before = service.select(
                key, mix["reach-main"], tenant="prober", spec_name="reach-main"
            )
            with edit_counter:
                edit_state["index"] += 1
                index = edit_state["index"]
            service.edit(key, _graft_node(index))
            after = service.select(
                key, mix["reach-main"], tenant="prober", spec_name="reach-main"
            )
            if after.graph_version <= before.graph_version:
                raise AssertionError(
                    f"edit did not bump {key!r}'s graph version"
                )
            if frozenset(after.selection.selected) != frozenset(
                before.selection.selected
            ):
                changed = True
        stats = service.stats_snapshot()
    finally:
        service.close()

    if failures:
        raise failures[0]
    return ServeReport(
        apps=tuple(apps),
        tenants=tenants,
        requests=stats["requests"],
        responses=stats["responses"],
        failures=stats["failures"],
        edits=stats["edits"],
        batches=stats["batches"],
        mean_batch_size=stats["mean_batch_size"],
        max_batch_size=stats["max_batch_size"],
        deduped=stats["deduped"],
        cross_hits=stats["cross_hits"],
        warm_hit_rate=stats["store"]["hit_rate"],
        invalidations=stats["store"]["invalidations"],
        requests_per_second=stats["requests_per_second"],
        mean_latency_seconds=stats["mean_latency_seconds"],
        verified=verify,
        result_changed_after_edit=changed,
    )


def render_serve_report(report: ServeReport) -> str:
    headers = [
        "apps", "tenants", "req", "resp", "fail", "edits",
        "batches", "mean", "max", "dedup", "xhits",
        "warm", "inval", "req/s", "lat(ms)",
    ]
    body = [(
        "+".join(report.apps),
        str(report.tenants),
        str(report.requests),
        str(report.responses),
        str(report.failures),
        str(report.edits),
        str(report.batches),
        f"{report.mean_batch_size:.1f}",
        str(report.max_batch_size),
        str(report.deduped),
        str(report.cross_hits),
        f"{100 * report.warm_hit_rate:.0f}%",
        str(report.invalidations),
        f"{report.requests_per_second:.0f}",
        f"{1000 * report.mean_latency_seconds:.2f}",
    )]
    title = (
        "SELECTION SERVICE — multi-tenant client mix "
        "(batched, warm store, live edits)"
    )
    return format_table(headers, body, title=title)


def check_report(report: ServeReport) -> list[str]:
    """The ``--check`` contract; empty list means the run is good."""
    problems = []
    if report.failures:
        problems.append(f"{report.failures} request(s) failed")
    if report.responses != report.requests:
        problems.append(
            f"answered {report.responses} of {report.requests} requests"
        )
    if not report.verified:
        problems.append("verify mode was off — bit-identity not re-derived")
    if report.max_batch_size < 2:
        problems.append("batching never engaged (max batch size < 2)")
    if not report.result_changed_after_edit:
        problems.append("no result changed across a graph edit")
    if not report.invalidations:
        problems.append("edits never invalidated a warm store entry")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--app", choices=["lulesh", "openfoam", "both"], default="lulesh"
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="override the per-app call-graph size (smoke runs use a "
        "few hundred nodes)",
    )
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=12, help="queries per tenant"
    )
    parser.add_argument(
        "--edit-every",
        type=int,
        default=10,
        help="interleave a graph edit every N submissions (0 disables)",
    )
    parser.add_argument(
        "--window", type=float, default=0.02,
        help="micro-batch window in seconds",
    )
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify every batched result against its sequential "
        "re-derivation and exit non-zero on any failure",
    )
    args = parser.parse_args(argv)
    apps = ("lulesh", "openfoam") if args.app == "both" else (args.app,)
    scales = None
    if args.nodes is not None:
        scales = {name: args.nodes for name in apps}
    report = run_service_mix(
        apps,
        scales=scales,
        tenants=args.tenants,
        requests_per_tenant=args.requests,
        edit_every=args.edit_every,
        window_seconds=args.window,
        max_batch=args.max_batch,
        seed=args.seed,
        verify=args.check,
    )
    print(render_serve_report(report))
    if args.check:
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}")
            return 1
        print(
            f"CHECK OK: {report.responses} batched responses bit-identical "
            f"to sequential evaluation across {report.edits} live edit(s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
