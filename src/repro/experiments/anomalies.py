"""Regenerate the §VI-B measurement anomalies.

* **A1 — missing symbols**: the openfoam executable links 6 patchable
  DSOs; a set of hidden-visibility functions (1,444 at paper scale)
  cannot be resolved by DynCaPI's id→name mapping, and none of them are
  selected by the evaluated ICs, so the limitation is harmless in
  practice — exactly the paper's conclusion.
* **A2 — TALP registration/entry failures**: regions first entered
  before ``MPI_Init`` are never recorded (the paper counted 15 for the
  mpi IC); at high registered-region counts some region entries fail
  outright (24 unique in the paper).

Run with ``python -m repro.experiments.anomalies``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.dyncapi.talp_bridge import TalpBridge
from repro.experiments.runner import DEFAULT_SCALES, PAPER_SCALES, prepare_app, run_configuration


@dataclass(frozen=True)
class AnomalyReport:
    hidden_functions: int
    unresolved_ids: int
    unresolved_selected_by_ic: int
    talp_failed_registrations: int
    talp_failed_entries: int
    registered_regions: int


def compute_anomalies(
    *,
    target_nodes: int | None = None,
    talp_bug_threshold: int | None = 200,
    talp_bug_modulus: int | None = 16,
) -> AnomalyReport:
    """Reproduce §VI-B on the openfoam case.

    At the default scaled-down graph size the TALP region map holds far
    fewer regions than the paper's 16,956, so the bug's threshold and
    collision rate are scaled down proportionally to keep the phenomenon
    observable; ``--scale paper`` with ``talp_bug_threshold=None`` uses
    the faithful full-scale constants.
    """
    prepared = prepare_app("openfoam", target_nodes)
    hidden = sum(
        len(obj.hidden_function_names())
        for obj in prepared.app.linked.all_objects()
    )
    ic = prepared.select("mpi").ic

    outcome = run_configuration(
        prepared,
        mode="ic",
        tool="talp",
        ic=ic,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name="mpi",
    )
    assert outcome.startup is not None
    bridge = outcome.bridge
    assert isinstance(bridge, TalpBridge)

    # A1 cross-check: are any unresolvable (hidden) functions selected
    # by the IC?  The paper found none, making the limitation harmless.
    hidden_names = set()
    for obj in prepared.app.linked.all_objects():
        hidden_names |= obj.hidden_function_names()
    unresolved_selected = len(hidden_names & ic.functions)

    return AnomalyReport(
        hidden_functions=hidden,
        unresolved_ids=outcome.startup.unresolved_ids,
        unresolved_selected_by_ic=unresolved_selected,
        talp_failed_registrations=len(bridge.failed_registrations),
        talp_failed_entries=len(bridge.failed_entries),
        registered_regions=bridge.registered_count,
    )


def render(report: AnomalyReport) -> str:
    return "\n".join(
        [
            "ANOMALY REPRODUCTION (paper §VI-B, openfoam)",
            "=" * 52,
            f"A1  hidden-visibility functions in DSOs : {report.hidden_functions}",
            f"A1  XRay ids unresolvable by DynCaPI    : {report.unresolved_ids}",
            f"A1  of those selected by the mpi IC     : "
            f"{report.unresolved_selected_by_ic} (paper: 0 — harmless)",
            f"A2  TALP regions registered             : {report.registered_regions}",
            f"A2  regions entered before MPI_Init     : "
            f"{report.talp_failed_registrations} (paper: 15)",
            f"A2  unique failed region entries        : "
            f"{report.talp_failed_entries} (paper: 24)",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["default", "paper"], default="default")
    args = parser.parse_args(argv)
    nodes = (PAPER_SCALES if args.scale == "paper" else DEFAULT_SCALES)["openfoam"]
    print(render(compute_anomalies(target_nodes=nodes)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
