"""Regenerate the §VI-B measurement anomalies.

* **A1 — missing symbols**: the openfoam executable links 6 patchable
  DSOs; a set of hidden-visibility functions (1,444 at paper scale)
  cannot be resolved by DynCaPI's id→name mapping, and none of them are
  selected by the evaluated ICs, so the limitation is harmless in
  practice — exactly the paper's conclusion.
* **A2 — TALP registration/entry failures**: regions first entered
  before ``MPI_Init`` are never recorded (the paper counted 15 for the
  mpi IC); at high registered-region counts some region entries fail
  outright (24 unique in the paper).

Run with ``python -m repro.experiments.anomalies``.

The module doubles as the fault-injection smoke
(``python -m repro.experiments.anomalies --check-faults``): it pushes
the recoverable chaos presets (crash, hang, corrupt payload) through the
:class:`~repro.multirank.backends.SupervisedBackend`, asserts each run
heals bit-identically to a fault-free reference, then exercises the
rank-loss preset under both degradation policies.  Per-rank supervision
records surface as structured ``ALERT`` lines, and the exit code turns 1
when any rank is lost on a preset that must recover (tunable with
``--max-lost-fraction``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.dyncapi.talp_bridge import TalpBridge
from repro.errors import DegradedResultError
from repro.experiments.runner import DEFAULT_SCALES, PAPER_SCALES, prepare_app, run_configuration
from repro.multirank import ImbalanceSpec, SupervisedBackend
from repro.multirank.faults import HealthReport


@dataclass(frozen=True)
class AnomalyReport:
    hidden_functions: int
    unresolved_ids: int
    unresolved_selected_by_ic: int
    talp_failed_registrations: int
    talp_failed_entries: int
    registered_regions: int


def compute_anomalies(
    *,
    target_nodes: int | None = None,
    talp_bug_threshold: int | None = 200,
    talp_bug_modulus: int | None = 16,
) -> AnomalyReport:
    """Reproduce §VI-B on the openfoam case.

    At the default scaled-down graph size the TALP region map holds far
    fewer regions than the paper's 16,956, so the bug's threshold and
    collision rate are scaled down proportionally to keep the phenomenon
    observable; ``--scale paper`` with ``talp_bug_threshold=None`` uses
    the faithful full-scale constants.
    """
    prepared = prepare_app("openfoam", target_nodes)
    hidden = sum(
        len(obj.hidden_function_names())
        for obj in prepared.app.linked.all_objects()
    )
    ic = prepared.select("mpi").ic

    outcome = run_configuration(
        prepared,
        mode="ic",
        tool="talp",
        ic=ic,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name="mpi",
    )
    assert outcome.startup is not None
    bridge = outcome.bridge
    assert isinstance(bridge, TalpBridge)

    # A1 cross-check: are any unresolvable (hidden) functions selected
    # by the IC?  The paper found none, making the limitation harmless.
    hidden_names = set()
    for obj in prepared.app.linked.all_objects():
        hidden_names |= obj.hidden_function_names()
    unresolved_selected = len(hidden_names & ic.functions)

    return AnomalyReport(
        hidden_functions=hidden,
        unresolved_ids=outcome.startup.unresolved_ids,
        unresolved_selected_by_ic=unresolved_selected,
        talp_failed_registrations=len(bridge.failed_registrations),
        talp_failed_entries=len(bridge.failed_entries),
        registered_regions=bridge.registered_count,
    )


def render(report: AnomalyReport) -> str:
    return "\n".join(
        [
            "ANOMALY REPRODUCTION (paper §VI-B, openfoam)",
            "=" * 52,
            f"A1  hidden-visibility functions in DSOs : {report.hidden_functions}",
            f"A1  XRay ids unresolvable by DynCaPI    : {report.unresolved_ids}",
            f"A1  of those selected by the mpi IC     : "
            f"{report.unresolved_selected_by_ic} (paper: 0 — harmless)",
            f"A2  TALP regions registered             : {report.registered_regions}",
            f"A2  regions entered before MPI_Init     : "
            f"{report.talp_failed_registrations} (paper: 15)",
            f"A2  unique failed region entries        : "
            f"{report.talp_failed_entries} (paper: 24)",
        ]
    )


def render_health_alerts(health: HealthReport | None) -> list[str]:
    """Structured alert lines for a run's supervision records.

    One ``ALERT`` line per retried rank (recovered, but only after
    failures), per lost rank (retries exhausted), and one for degraded
    POP coverage.  An empty list means the run was perfectly healthy.

    This is a text *view* over the shared structured records: the same
    :func:`repro.trace.alerts.health_alerts` list the watchdog
    serialises as JSONL, rendered line by line.
    """
    from repro.trace.alerts import health_alerts

    return [alert.render() for alert in health_alerts(health)]


#: presets whose faults a supervisor must absorb completely: every rank
#: recovers within the retry budget and the merged result is
#: bit-identical to a fault-free run
RECOVERABLE_PRESETS = ("crash-once", "one-hang", "corrupt-profile")


def _fingerprint(outcome) -> list[tuple]:
    """Exact per-rank artefacts for bit-identity comparison."""
    return [
        (r.rank, r.result.t_total, r.result.useful_cycles, r.profile)
        for r in outcome.multirank.per_rank
    ]


def check_faults(
    *,
    target_nodes: int = 120,
    ranks: int = 4,
    deadline_seconds: float = 6.0,
    max_lost_fraction: float = 0.0,
) -> int:
    """Run the fault-injection smoke; return the process exit code.

    Sized for CI: a small lulesh case (~1.5 s/rank) so that the whole
    sweep — reference, three recoverable presets, rank-loss under both
    degradation policies — stays under about a minute.  The supervisor
    wraps the serial backend so results stay bit-comparable on any
    machine; the pooled path is covered by the test suite.
    """
    failures: list[str] = []
    lost_total = 0
    rank_runs = 0

    def run(faults=None, degraded="forbid"):
        backend = SupervisedBackend("serial", deadline_seconds=deadline_seconds)
        return run_configuration(
            prepared,
            mode="ic",
            tool="scorep",
            ic=ic,
            ranks=ranks,
            imbalance=ImbalanceSpec(imbalance=0.3, seed=7),
            backend=backend,
            faults=faults,
            degraded=degraded,
        )

    print(f"FAULT SMOKE — lulesh nodes={target_nodes} ranks={ranks}")
    print("=" * 52)
    prepared = prepare_app("lulesh", target_nodes)
    ic = prepared.select("kernels").ic

    reference = run()
    ref_print = _fingerprint(reference)
    print(f"reference: fault-free, {reference.health.render().splitlines()[0]}")

    for preset in RECOVERABLE_PRESETS:
        outcome = run(faults=preset)
        alerts = render_health_alerts(outcome.health)
        for line in alerts:
            print(f"[{preset}] {line}")
        health = outcome.health
        rank_runs += health.ranks
        lost_total += len(health.lost_ranks)
        if health.lost_ranks:
            failures.append(f"{preset}: lost ranks {list(health.lost_ranks)}")
        elif not health.retried_ranks:
            failures.append(f"{preset}: no rank retried — fault not injected?")
        if _fingerprint(outcome) != ref_print:
            failures.append(f"{preset}: recovered result differs from reference")
        else:
            print(f"[{preset}] recovered bit-identical to reference")

    # rank-loss: retries must exhaust; forbid raises, allow degrades
    try:
        run(faults="rank-loss")
    except DegradedResultError as exc:
        print(f"[rank-loss/forbid] raised as required: {exc}")
    else:
        failures.append("rank-loss: degraded='forbid' did not raise")

    outcome = run(faults="rank-loss", degraded="allow")
    for line in render_health_alerts(outcome.health):
        print(f"[rank-loss/allow] {line}")
    if len(outcome.health.missing_ranks) != 1:
        failures.append(
            f"rank-loss: expected 1 missing rank, got "
            f"{list(outcome.health.missing_ranks)}"
        )
    if "DEGRADED" not in outcome.pop.render():
        failures.append("rank-loss: POP report lacks the DEGRADED annotation")
    else:
        print(
            f"[rank-loss/allow] degraded POP coverage "
            f"{outcome.pop.coverage:.1%} annotated"
        )

    lost_fraction = lost_total / rank_runs if rank_runs else 0.0
    print("-" * 52)
    print(
        f"recoverable presets: {lost_total}/{rank_runs} ranks lost "
        f"(threshold {max_lost_fraction:.1%})"
    )
    if lost_fraction > max_lost_fraction:
        failures.append(
            f"lost fraction {lost_fraction:.1%} exceeds "
            f"threshold {max_lost_fraction:.1%}"
        )
    for failure in failures:
        print(f"FAIL {failure}")
    print("fault smoke:", "FAIL" if failures else "PASS")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["default", "paper"], default="default")
    parser.add_argument(
        "--check-faults",
        action="store_true",
        help="run the fault-injection smoke instead of the anomaly tables",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=120,
        help="lulesh scale for --check-faults (default: 120)",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=4,
        help="world size for --check-faults (default: 4)",
    )
    parser.add_argument(
        "--deadline-seconds",
        type=float,
        default=6.0,
        help="per-rank supervision deadline for --check-faults",
    )
    parser.add_argument(
        "--max-lost-fraction",
        type=float,
        default=0.0,
        help="tolerated fraction of lost ranks across the recoverable "
        "presets before the smoke exits 1 (default: 0.0)",
    )
    parser.add_argument(
        "--watch",
        metavar="DIR",
        default=None,
        help="watchdog mode: tail DIR for trace archives, emit JSONL "
        "alerts on stdout (human summary on stderr)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="with --watch: scan once and exit instead of looping",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=5.0,
        help="with --watch: seconds between scans (default: 5)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="with --watch: BENCH_selection.json supplying the "
        "trace_pipeline.healthy_wait_fraction baseline",
    )
    parser.add_argument(
        "--wait-slack",
        type=float,
        default=2.0,
        help="with --watch: multiplier on the baseline wait fraction "
        "before a wait-regression alert fires (default: 2.0)",
    )
    parser.add_argument(
        "--alerts-file",
        default=None,
        help="with --watch: also append the JSONL alerts to this file",
    )
    parser.add_argument(
        "--fail-on-alert",
        action="store_true",
        help="with --watch: exit 1 if any alert fired (for CI smokes)",
    )
    args = parser.parse_args(argv)
    if args.watch is not None:
        from repro.trace.watchdog import WatchConfig, watch

        total = watch(
            args.watch,
            once=args.once,
            interval=args.interval,
            config=WatchConfig(
                baseline_path=args.baseline, wait_slack=args.wait_slack
            ),
            alerts_file=args.alerts_file,
        )
        return 1 if (args.fail_on_alert and total > 0) else 0
    if args.check_faults:
        return check_faults(
            target_nodes=args.nodes,
            ranks=args.ranks,
            deadline_seconds=args.deadline_seconds,
            max_lost_fraction=args.max_lost_fraction,
        )
    nodes = (PAPER_SCALES if args.scale == "paper" else DEFAULT_SCALES)["openfoam"]
    print(render(compute_anomalies(target_nodes=nodes)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
