"""Dynamic workload shaping: bounding the simulated call tree.

Call-site multiplicities in the synthetic applications describe
*relative* hotness; executed literally they would explode combinatorially
down deep call chains.  A :class:`Workload` clamps the expansion
deterministically — per-site caps, a depth cap, and a global event
budget — while the virtual clock still charges the *uncapped* residual
cost so total runtime reflects the full workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError


@dataclass(frozen=True)
class Workload:
    """Execution shaping parameters.

    ``site_cap`` limits how many times one call site is *walked* per
    invocation of its caller; the remaining ``count - cap`` invocations
    are charged analytically (cost-only, no events).  This keeps event
    streams bounded while preserving total virtual time first-order.
    """

    #: multiplier applied to every call-site count (problem size knob);
    #: compounds multiplicatively down the call tree
    scale: float = 1.0
    #: multiplier applied ONCE, to call sites of the once-per-run spine
    #: (entry function plus its single-caller, once-called descendants —
    #: the timestep-loop layer).  Rank-dependent iteration counts: total
    #: work scales *linearly*, which is how the multi-rank imbalance
    #: model perturbs one rank.
    root_scale: float = 1.0
    #: walk at most this many repetitions of one call site
    site_cap: int = 3
    #: maximum dynamic call depth
    max_depth: int = 120
    #: hard ceiling on function-entry events for one run
    event_budget: int = 2_000_000

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ExecutionError("workload scale must be positive")
        if self.root_scale <= 0:
            raise ExecutionError("workload root_scale must be positive")
        if self.site_cap < 1:
            raise ExecutionError("site_cap must be >= 1")
        if self.max_depth < 2:
            raise ExecutionError("max_depth must be >= 2")

    def effective_count(self, declared: int, *, root: bool = False) -> int:
        """Scaled dynamic repetition count of a call site.

        ``root=True`` marks a call site on the once-per-run spine,
        where the one-shot ``root_scale`` applies on top of ``scale``.
        """
        factor = self.scale * self.root_scale if root else self.scale
        return max(0, round(declared * factor))

    def split(self, declared: int, *, root: bool = False) -> tuple[int, int]:
        """Return ``(walked, charged_only)`` repetitions of a site."""
        total = self.effective_count(declared, root=root)
        walked = min(total, self.site_cap)
        return walked, total - walked
