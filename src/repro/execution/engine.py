"""The virtual-clock execution engine.

Runs a linked, loaded program by walking its machine-level call tree
from the entry point, charging the virtual clock for every mechanism
along the way:

* function body cost (``base_cost`` — "useful" computation),
* sled traversal: NOP cost when unpatched, trampoline dispatch plus the
  installed handler's cost when patched (the handler itself advances the
  clock, exactly like a real tool steals cycles in-line),
* MPI operations routed through the PMPI layer, and
* static initialisers executed before ``main`` (they fire sleds too —
  this is where the paper's "regions entered before MPI_Init" anomaly
  comes from).

Deep hot loops are bounded by the :class:`~repro.execution.workload.
Workload` caps; capped-off repetitions are charged *analytically* from
a memoised per-function cost closure so the total virtual time still
reflects the full dynamic workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import stable_hash
from repro.errors import ExecutionError
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.execution.result import RunResult
from repro.execution.workload import Workload
from repro.program.ir import CallKind, SourceProgram, resolve_call_targets
from repro.program.linker import LinkedProgram
from repro.program.loader import LoadedObject
from repro.program.machine import FUNCTION_HEADER_BYTES, MachineCallSite, MachineFunction
from repro.simmpi.pmpi import PmpiLayer
from repro.xray.runtime import XRayRuntime
from repro.xray.sled import SLED_BYTES


@dataclass
class _AnalyticTotals:
    """Per-invocation cost closure of one function's whole subtree."""

    cycles: float = 0.0
    useful: float = 0.0
    mpi_cycles: float = 0.0
    mpi_calls: int = 0
    entries: int = 0


@dataclass
class ExecutionEngine:
    """One configured run of a loaded program."""

    linked: LinkedProgram
    loaded: list[LoadedObject]
    tool: str = "none"
    xray_runtime: XRayRuntime | None = None
    pmpi: PmpiLayer | None = None
    cost_model: CostModel = field(default_factory=CostModel)
    workload: Workload = field(default_factory=Workload)
    clock: VirtualClock = field(default_factory=VirtualClock)

    def __post_init__(self) -> None:
        self._functions: dict[str, MachineFunction] = {}
        self._sled_addrs: dict[str, tuple[int, int]] = {}
        for lo in self.loaded:
            for mf in lo.binary.functions.values():
                self._functions[mf.name] = mf
                if mf.xray_instrumented:
                    entry = lo.base + mf.offset + FUNCTION_HEADER_BYTES
                    exit_ = lo.base + mf.offset + mf.size_bytes - SLED_BYTES
                    self._sled_addrs[mf.name] = (entry, exit_)
        self._program: SourceProgram = self.linked.compiled.program
        self._patched_cache: dict[str, bool] = {}
        self._analytic_memo: dict[str, _AnalyticTotals] = {}
        self._result: RunResult | None = None

    # -- public ---------------------------------------------------------------

    def run(self, *, config_name: str = "") -> RunResult:
        """Execute static initialisers, then ``main``; returns the result."""
        if self._result is not None:
            raise ExecutionError("engine instances are single-use")
        result = RunResult(
            app_name=self._program.name, tool=self.tool, config_name=config_name
        )
        self._result = result
        start = self.clock.now()
        for name in self._static_initializers():
            self._execute(name, depth=0)
        entry = self._program.entry
        if entry not in self._functions:
            raise ExecutionError(f"entry function {entry!r} was not emitted")
        self._execute(entry, depth=0)
        result.t_app_cycles = self.clock.now() - start
        if self.pmpi is not None:
            result.mpi_calls += self.pmpi.world.mpi_calls
            result.mpi_cycles += self.pmpi.world.mpi_cycles
        if self.xray_runtime is not None:
            result.patched_functions = self.xray_runtime.patched_count()
            result.patched_sleds = self.xray_runtime.patcher.stats.patched
        return result

    # -- execution -------------------------------------------------------------

    def _static_initializers(self) -> list[str]:
        """Initialisers in object-load order (executable first, then DSOs)."""
        names = []
        for lo in self.loaded:
            for mf in sorted(lo.binary.functions.values(), key=lambda f: f.offset):
                if mf.is_static_initializer:
                    names.append(mf.name)
        return names

    def _execute(self, name: str, depth: int) -> None:
        mf = self._functions.get(name)
        if mf is None:
            # target was fully inlined: its cost lives in the caller already
            return
        result = self._result
        assert result is not None
        if mf.is_mpi:
            self._mpi_call(mf)
            return
        result.entry_events += 1
        result.per_function_calls[name] = result.per_function_calls.get(name, 0) + 1
        self._fire_sled(mf, entry=True)
        self.clock.advance(mf.base_cost)
        result.useful_cycles += mf.base_cost
        if depth < self.workload.max_depth:
            for site in mf.call_sites:
                self._execute_site(mf, site, depth)
        result.exit_events += 1
        self._fire_sled(mf, entry=False)

    def _execute_site(self, mf: MachineFunction, site: MachineCallSite, depth: int) -> None:
        result = self._result
        assert result is not None
        targets = self._resolve_targets(site)
        if not targets:
            return
        if targets[0] in ("MPI_Init", "MPI_Finalize"):
            # lifecycle calls are one-shot: never scaled, never charged
            walked, charged = site.count, 0
        else:
            walked, charged = self.workload.split(site.count)
        if result.entry_events >= self.workload.event_budget:
            charged += walked
            walked = 0
        for i in range(walked):
            self._execute(targets[i % len(targets)], depth + 1)
        if charged > 0:
            self._charge(targets[0], charged)

    def _resolve_targets(self, site: MachineCallSite) -> list[str]:
        """Dynamic targets of a site, deterministically ordered.

        Virtual sites rotate through the overrider set starting at a
        hash-picked offset so different call sites exercise different
        concrete implementations.
        """
        targets = resolve_call_targets(
            self._program,
            _as_ir_site(site),
            include_dynamic_pointers=True,
        )
        if len(targets) > 1:
            offset = stable_hash(f"{site.callee}:{site.pointer_id}") % len(targets)
            targets = targets[offset:] + targets[:offset]
        return targets

    def _mpi_call(self, mf: MachineFunction) -> None:
        result = self._result
        assert result is not None
        if self.pmpi is None:
            # headless run (no MPI world): charge the stub cost only
            self.clock.advance(mf.base_cost)
            return
        cycles = self.pmpi.call(mf.name)
        self.clock.advance(cycles)

    # -- sleds --------------------------------------------------------------------

    def _fire_sled(self, mf: MachineFunction, *, entry: bool) -> None:
        if self.xray_runtime is None or not mf.xray_instrumented:
            return
        addrs = self._sled_addrs.get(mf.name)
        if addrs is None:
            return
        fired = self.xray_runtime.fire_sled(addrs[0] if entry else addrs[1])
        if fired:
            self.clock.advance(self.cost_model.patched_dispatch)
        else:
            self.clock.advance(self.cost_model.nop_sled)

    def _is_patched(self, name: str) -> bool:
        if self.xray_runtime is None:
            return False
        cached = self._patched_cache.get(name)
        if cached is None:
            addrs = self._sled_addrs.get(name)
            cached = bool(
                addrs and self.xray_runtime.patcher.read_sled(addrs[0]) is not None
            )
            self._patched_cache[name] = cached
        return cached

    # -- analytic charging -----------------------------------------------------------

    def _charge(self, name: str, times: int) -> None:
        """Charge ``times`` capped-off invocations of ``name`` analytically."""
        totals = self._analytic(name)
        result = self._result
        assert result is not None
        extra_mpi = self._interceptor_estimate() * totals.mpi_calls * times
        self.clock.advance(times * totals.cycles + extra_mpi)
        result.useful_cycles += times * totals.useful
        result.charged_only_calls += times * totals.entries
        if self.pmpi is not None:
            result.mpi_cycles += times * totals.mpi_cycles
            result.mpi_calls += times * totals.mpi_calls

    def _interceptor_estimate(self) -> float:
        """Current per-MPI-call interceptor overhead (e.g. TALP's)."""
        if self.pmpi is None:
            return 0.0
        return sum(
            interceptor.estimate_extra()
            for interceptor in self.pmpi.interceptors
            if hasattr(interceptor, "estimate_extra")
        )

    def _analytic(self, name: str) -> _AnalyticTotals:
        """Memoised per-invocation subtree cost (cycles/useful/MPI/events).

        Computed iteratively over the call DAG; back edges of recursion
        cycles contribute a single level (consistent with the depth cap
        applied to walked execution).
        """
        memo = self._analytic_memo
        if name in memo:
            return memo[name]
        in_progress: set[str] = set()
        stack: list[tuple[str, int]] = [(name, 0)]
        order: list[str] = []
        while stack:
            fn_name, state = stack.pop()
            if state == 0:
                if fn_name in memo or fn_name in in_progress:
                    continue
                in_progress.add(fn_name)
                stack.append((fn_name, 1))
                mf = self._functions.get(fn_name)
                if mf is None or mf.is_mpi:
                    continue
                for site in mf.call_sites:
                    for target in self._resolve_targets(site):
                        if target not in memo and target not in in_progress:
                            stack.append((target, 0))
            else:
                order.append(fn_name)
        for fn_name in order:
            memo[fn_name] = self._analytic_of(fn_name, memo)
        return memo[name]

    def _analytic_of(
        self, name: str, memo: dict[str, _AnalyticTotals]
    ) -> _AnalyticTotals:
        mf = self._functions.get(name)
        totals = _AnalyticTotals()
        if mf is None:
            return totals
        if mf.is_mpi:
            if self.pmpi is not None:
                cost = self.pmpi.comm.cost_of(mf.name)
                totals.cycles = cost
                totals.mpi_cycles = cost
                totals.mpi_calls = 1
            else:
                totals.cycles = mf.base_cost
            return totals
        totals.entries = 1
        totals.useful = mf.base_cost
        totals.cycles = mf.base_cost
        patched = (
            mf.xray_instrumented
            and self.xray_runtime is not None
            and self._is_patched(name)
        )
        if mf.xray_instrumented and self.xray_runtime is not None:
            if patched:
                per_sled = (
                    self.cost_model.patched_dispatch
                    + self.cost_model.handler_cost(self.tool)
                )
            else:
                per_sled = self.cost_model.nop_sled
            totals.cycles += 2 * per_sled
        for site in mf.call_sites:
            count = self.workload.effective_count(site.count)
            if count == 0:
                continue
            targets = self._resolve_targets(site)
            if not targets:
                continue
            sub = memo.get(targets[0], _AnalyticTotals())
            totals.cycles += count * sub.cycles
            totals.useful += count * sub.useful
            totals.mpi_cycles += count * sub.mpi_cycles
            totals.mpi_calls += count * sub.mpi_calls
            totals.entries += count * sub.entries
        if patched and self.tool == "talp" and totals.mpi_calls > 0:
            # mirror the walked path: a TALP region whose instance saw
            # MPI pays the POP accounting update on exit
            totals.cycles += self.cost_model.talp_mpi_region_update
        return totals


def _as_ir_site(site: MachineCallSite):
    """Bridge a machine call site back to an IR site for target lookup."""
    from repro.program.ir import CallSite

    return CallSite(
        callee=site.callee,
        kind=site.kind,
        pointer_id=site.pointer_id,
        calls_per_invocation=max(site.count, 0),
    )
