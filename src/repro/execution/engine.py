"""The virtual-clock execution engine.

Runs a linked, loaded program by walking its machine-level call tree
from the entry point, charging the virtual clock for every mechanism
along the way:

* function body cost (``base_cost`` — "useful" computation),
* sled traversal: NOP cost when unpatched, trampoline dispatch plus the
  installed handler's cost when patched (the handler itself advances the
  clock, exactly like a real tool steals cycles in-line),
* MPI operations routed through the PMPI layer, and
* static initialisers executed before ``main`` (they fire sleds too —
  this is where the paper's "regions entered before MPI_Init" anomaly
  comes from).

Deep hot loops are bounded by the :class:`~repro.execution.workload.
Workload` caps; capped-off repetitions are charged *analytically* from
a memoised per-function cost closure so the total virtual time still
reflects the full dynamic workload.

The innermost walked-execution loop is memoised: dynamic call targets
(including the deterministic virtual-dispatch hash rotation) are
resolved **once per call site**, and each function's sites are folded
into a per-function record carrying the precomputed ``(walked,
charged)`` workload split.  All caches that depend on sled state
(``_patched_cache``, ``_analytic_memo``) are keyed against the XRay
patch epoch — the patcher's cumulative patch/unpatch counter — so
mid-run repatching by the DynCaPI runtime can never serve stale costs.

The walk itself is an explicit work-stack loop (one ``_Frame`` per open
function invocation) rather than Python recursion, so the dynamic call
depth is bounded only by :attr:`Workload.max_depth` — deep wrapper
chains and deep per-rank workloads never hit the interpreter recursion
limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import stable_hash
from repro.errors import ExecutionError
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.execution.result import RunResult
from repro.execution.workload import Workload
from repro.program.ir import CallKind, SourceProgram, resolve_call_targets
from repro.program.linker import LinkedProgram
from repro.program.loader import LoadedObject
from repro.program.machine import FUNCTION_HEADER_BYTES, MachineCallSite, MachineFunction
from repro.simmpi.pmpi import PmpiLayer
from repro.xray.runtime import XRayRuntime
from repro.xray.sled import SLED_BYTES

#: one-shot lifecycle calls: never scaled, never charged analytically
_LIFECYCLE = ("MPI_Init", "MPI_Finalize")


@dataclass
class _AnalyticTotals:
    """Per-invocation cost closure of one function's whole subtree."""

    cycles: float = 0.0
    useful: float = 0.0
    mpi_cycles: float = 0.0
    mpi_calls: int = 0
    entries: int = 0


@dataclass
class _SiteRecord:
    """One machine call site with targets and workload split resolved."""

    __slots__ = ("targets", "n_targets", "walked", "charged", "effective")

    #: dynamic targets, virtual-dispatch rotation already applied
    targets: tuple[str, ...]
    n_targets: int
    #: workload split of the site count (lifecycle sites: count, 0)
    walked: int
    charged: int
    #: scaled repetition count for the analytic path
    effective: int


@dataclass
class _FnRecord:
    """Per-function execution record: everything ``_execute`` touches."""

    __slots__ = ("mf", "name", "base_cost", "is_mpi", "sites")

    mf: MachineFunction
    name: str
    base_cost: float
    is_mpi: bool
    #: resolved call sites; sites without targets are dropped up front
    sites: list[_SiteRecord]


class _Frame:
    """One open function invocation on the explicit walk stack."""

    __slots__ = ("rec", "child_depth", "sites", "si", "site", "i", "walked", "charged")

    def __init__(self, rec: _FnRecord, child_depth: int, sites: list[_SiteRecord]):
        self.rec = rec
        self.child_depth = child_depth
        #: sites to process (empty when the frame sits at the depth cap)
        self.sites = sites
        self.si = 0
        #: the site currently being expanded (None: fetch the next one)
        self.site: _SiteRecord | None = None
        self.i = 0
        self.walked = 0
        self.charged = 0


_NO_SITES: list[_SiteRecord] = []


class _NeverStore(dict):
    """Cache stand-in that drops every write — used by equivalence tests
    to force per-call recomputation through the exact same code path."""

    def __setitem__(self, key, value) -> None:  # pragma: no cover - trivial
        pass


@dataclass
class ExecutionEngine:
    """One configured run of a loaded program."""

    linked: LinkedProgram
    loaded: list[LoadedObject]
    tool: str = "none"
    xray_runtime: XRayRuntime | None = None
    pmpi: PmpiLayer | None = None
    cost_model: CostModel = field(default_factory=CostModel)
    workload: Workload = field(default_factory=Workload)
    clock: VirtualClock = field(default_factory=VirtualClock)
    #: extra per-patched-sled-fire handler cycles the analytic path must
    #: mirror beyond ``cost_model.handler_cost(tool)`` — the walked path
    #: charges these inside the installed handler itself (e.g. the event
    #: tracer's per-event buffer write when tracing is attached)
    handler_extra: float = 0.0

    def __post_init__(self) -> None:
        self._functions: dict[str, MachineFunction] = {}
        self._sled_addrs: dict[str, tuple[int, int]] = {}
        for lo in self.loaded:
            for mf in lo.binary.functions.values():
                self._functions[mf.name] = mf
                if mf.xray_instrumented:
                    entry = lo.base + mf.offset + FUNCTION_HEADER_BYTES
                    exit_ = lo.base + mf.offset + mf.size_bytes - SLED_BYTES
                    self._sled_addrs[mf.name] = (entry, exit_)
        self._program: SourceProgram = self.linked.compiled.program
        #: (callee, kind, pointer_id) -> rotated target tuple
        self._target_cache: dict[tuple, tuple[str, ...]] = {}
        #: function name -> _FnRecord (or None for fully-inlined targets)
        self._records: dict[str, _FnRecord | None] = {}
        self._patched_cache: dict[str, bool] = {}
        self._analytic_memo: dict[str, _AnalyticTotals] = {}
        #: XRay patch epoch the sled-state caches were computed under
        self._cache_epoch = self._patch_epoch()
        #: once-per-run spine (root_scale scope), computed on demand
        self._root_region_set: set[str] | None = None
        self._result: RunResult | None = None

    # -- public ---------------------------------------------------------------

    def run(self, *, config_name: str = "") -> RunResult:
        """Execute static initialisers, then ``main``; returns the result."""
        if self._result is not None:
            raise ExecutionError("engine instances are single-use")
        result = RunResult(
            app_name=self._program.name, tool=self.tool, config_name=config_name
        )
        self._result = result
        start = self.clock.now()
        for name in self._static_initializers():
            self._execute(name, depth=0)
        entry = self._program.entry
        if entry not in self._functions:
            raise ExecutionError(f"entry function {entry!r} was not emitted")
        self._execute(entry, depth=0)
        result.t_app_cycles = self.clock.now() - start
        if self.pmpi is not None:
            result.mpi_calls += self.pmpi.world.mpi_calls
            result.mpi_cycles += self.pmpi.world.mpi_cycles
        if self.xray_runtime is not None:
            result.patched_functions = self.xray_runtime.patched_count()
            result.patched_sleds = self.xray_runtime.patcher.stats.patched
        return result

    # -- memoised structure ------------------------------------------------------

    def _site_targets(self, site: MachineCallSite) -> tuple[str, ...]:
        """Dynamic targets of a site, deterministically ordered, memoised.

        Virtual sites rotate through the overrider set starting at a
        hash-picked offset so different call sites exercise different
        concrete implementations.  Resolution and rotation depend only
        on the static program, so they are computed once per distinct
        ``(callee, kind, pointer_id)`` and reused for every invocation.
        """
        key = (site.callee, site.kind, site.pointer_id)
        cached = self._target_cache.get(key)
        if cached is not None:
            return cached
        targets = resolve_call_targets(
            self._program,
            _as_ir_site(site),
            include_dynamic_pointers=True,
        )
        if len(targets) > 1:
            offset = stable_hash(f"{site.callee}:{site.pointer_id}") % len(targets)
            targets = targets[offset:] + targets[:offset]
        resolved = tuple(targets)
        self._target_cache[key] = resolved
        return resolved

    def _record_of(self, name: str) -> _FnRecord | None:
        """Per-function execution record, memoised (None: fully inlined)."""
        rec = self._records.get(name)
        if rec is None and name not in self._records:
            rec = self._build_record(name)
            self._records[name] = rec
        return rec

    def _build_record(self, name: str) -> _FnRecord | None:
        mf = self._functions.get(name)
        if mf is None:
            # target was fully inlined: its cost lives in the caller already
            return None
        sites: list[_SiteRecord] = []
        split = self.workload.split
        effective = self.workload.effective_count
        # the one-shot root_scale (rank-dependent iteration counts)
        # applies to sites of the once-per-run spine — but never to
        # spine-internal links (main -> timeLoop), otherwise the factor
        # would compound once per spine edge instead of applying once
        spine: set[str] = (
            self._root_region()
            if self.workload.root_scale != 1.0 and name in self._root_region()
            else set()
        )
        for site in mf.call_sites:
            targets = self._site_targets(site)
            if not targets:
                continue
            root = bool(spine) and not (
                len(targets) == 1 and targets[0] in spine
            )
            if targets[0] in _LIFECYCLE:
                # lifecycle calls are one-shot: never scaled, never charged
                walked, charged = site.count, 0
            else:
                walked, charged = split(site.count, root=root)
            sites.append(
                _SiteRecord(
                    targets=targets,
                    n_targets=len(targets),
                    walked=walked,
                    charged=charged,
                    effective=effective(site.count, root=root),
                )
            )
        return _FnRecord(
            mf=mf,
            name=mf.name,
            base_cost=mf.base_cost,
            is_mpi=mf.is_mpi,
            sites=sites,
        )

    def _root_region(self) -> set[str]:
        """The once-per-run spine: where ``root_scale`` applies.

        The entry function belongs to the spine; so does any function
        whose *only* invocation is one single-target, declared-once
        call site of a spine function (e.g. ``main -> timeLoop``).
        Scaling a spine function's non-spine call-site counts scales
        the application's total iteration count — and therefore its
        work — *linearly*, which is the contract of the per-rank
        imbalance model.  Membership tests the **declared** site count,
        so it is purely static: independent of ``root_scale`` *and* of
        the compounding ``scale`` knob.
        """
        if self._root_region_set is not None:
            return self._root_region_set
        # target -> caller names over every machine call site
        callers: dict[str, list[str]] = {}
        for mf in self._functions.values():
            for site in mf.call_sites:
                for target in self._site_targets(site):
                    callers.setdefault(target, []).append(mf.name)
        region = {self._program.entry}
        frontier = [self._program.entry]
        while frontier:
            mf = self._functions.get(frontier.pop())
            if mf is None:
                continue
            for site in mf.call_sites:
                targets = self._site_targets(site)
                if len(targets) != 1 or site.count != 1:
                    continue
                target = targets[0]
                if target in region:
                    continue
                names = callers.get(target, ())
                if len(names) == 1 and names[0] == mf.name:
                    region.add(target)
                    frontier.append(target)
        self._root_region_set = region
        if self.workload.root_scale != 1.0 and not self._spine_has_scalable_site(
            region
        ):
            import warnings

            warnings.warn(
                f"Workload.root_scale={self.workload.root_scale} has no "
                f"effect on {self._program.name!r}: every call site of the "
                f"once-per-run spine is itself a spine link, so no "
                f"iteration count can be scaled (per-rank imbalance will "
                f"report a load balance of 1.0)",
                RuntimeWarning,
                stacklevel=3,
            )
        return region

    def _spine_has_scalable_site(self, region: set[str]) -> bool:
        """True if any spine call site actually receives ``root_scale``."""
        for fname in region:
            mf = self._functions.get(fname)
            if mf is None:
                continue
            for site in mf.call_sites:
                targets = self._site_targets(site)
                if not targets or targets[0] in _LIFECYCLE:
                    continue
                if len(targets) != 1 or targets[0] not in region:
                    return True
        return False

    # -- execution -------------------------------------------------------------

    def _static_initializers(self) -> list[str]:
        """Initialisers in object-load order (executable first, then DSOs)."""
        names = []
        for lo in self.loaded:
            for mf in sorted(lo.binary.functions.values(), key=lambda f: f.offset):
                if mf.is_static_initializer:
                    names.append(mf.name)
        return names

    def _enter(self, name: str, depth: int) -> _Frame | None:
        """Process one function entry; returns the frame to descend into.

        MPI stubs and fully-inlined targets are handled in place and
        yield no frame, exactly like the leaf cases of the former
        recursive walker.
        """
        rec = self._record_of(name)
        if rec is None:
            return None
        result = self._result
        assert result is not None
        if rec.is_mpi:
            self._mpi_call(rec.mf)
            return None
        result.entry_events += 1
        calls = result.per_function_calls
        calls[name] = calls.get(name, 0) + 1
        self._fire_sled(rec.mf, entry=True)
        base_cost = rec.base_cost
        self.clock.advance(base_cost)
        result.useful_cycles += base_cost
        sites = rec.sites if depth < self.workload.max_depth else _NO_SITES
        return _Frame(rec, depth + 1, sites)

    def _execute(self, name: str, depth: int) -> None:
        """Walk one call tree with an explicit frame stack (no recursion).

        The traversal order, clock charges, event counts and the
        per-site event-budget check are identical to the recursive
        formulation: each site's budget split is decided when the walk
        first reaches the site, its walked repetitions descend in
        order, and the analytic residual is charged after the last one.
        """
        result = self._result
        assert result is not None
        event_budget = self.workload.event_budget
        frame = self._enter(name, depth)
        if frame is None:
            return
        stack = [frame]
        while stack:
            frame = stack[-1]
            site = frame.site
            if site is None:
                if frame.si < len(frame.sites):
                    site = frame.sites[frame.si]
                    frame.si += 1
                    walked = site.walked
                    charged = site.charged
                    if result.entry_events >= event_budget:
                        charged += walked
                        walked = 0
                    frame.site = site
                    frame.walked = walked
                    frame.charged = charged
                    frame.i = 0
                    continue
                result.exit_events += 1
                self._fire_sled(frame.rec.mf, entry=False)
                stack.pop()
                continue
            if frame.i < frame.walked:
                targets = site.targets
                n = site.n_targets
                target = targets[0] if n == 1 else targets[frame.i % n]
                frame.i += 1
                child = self._enter(target, frame.child_depth)
                if child is not None:
                    stack.append(child)
                continue
            if frame.charged > 0:
                self._charge(site.targets[0], frame.charged)
            frame.site = None

    def _mpi_call(self, mf: MachineFunction) -> None:
        result = self._result
        assert result is not None
        if self.pmpi is None:
            # headless run (no MPI world): charge the stub cost only
            self.clock.advance(mf.base_cost)
            return
        cycles = self.pmpi.call(mf.name)
        self.clock.advance(cycles)

    # -- sleds --------------------------------------------------------------------

    def _fire_sled(self, mf: MachineFunction, *, entry: bool) -> None:
        if self.xray_runtime is None or not mf.xray_instrumented:
            return
        addrs = self._sled_addrs.get(mf.name)
        if addrs is None:
            return
        fired = self.xray_runtime.fire_sled(addrs[0] if entry else addrs[1])
        if fired:
            self.clock.advance(self.cost_model.patched_dispatch)
        else:
            self.clock.advance(self.cost_model.nop_sled)

    def _patch_epoch(self) -> int:
        """Monotone counter of sled-state changes (patch + unpatch ops)."""
        if self.xray_runtime is None:
            return 0
        stats = self.xray_runtime.patcher.stats
        return stats.patched + stats.unpatched

    def _check_sled_caches(self) -> None:
        """Drop sled-state-derived caches if any sled changed since."""
        epoch = self._patch_epoch()
        if epoch != self._cache_epoch:
            self._patched_cache.clear()
            self._analytic_memo.clear()
            self._cache_epoch = epoch

    def _is_patched(self, name: str) -> bool:
        if self.xray_runtime is None:
            return False
        self._check_sled_caches()
        cached = self._patched_cache.get(name)
        if cached is None:
            addrs = self._sled_addrs.get(name)
            cached = bool(
                addrs and self.xray_runtime.patcher.read_sled(addrs[0]) is not None
            )
            self._patched_cache[name] = cached
        return cached

    # -- analytic charging -----------------------------------------------------------

    def _charge(self, name: str, times: int) -> None:
        """Charge ``times`` capped-off invocations of ``name`` analytically."""
        totals = self._analytic(name)
        result = self._result
        assert result is not None
        extra_mpi = self._interceptor_estimate() * totals.mpi_calls * times
        self.clock.advance(times * totals.cycles + extra_mpi)
        result.useful_cycles += times * totals.useful
        result.charged_only_calls += times * totals.entries
        if self.pmpi is not None:
            result.mpi_cycles += times * totals.mpi_cycles
            result.mpi_calls += times * totals.mpi_calls

    def _interceptor_estimate(self) -> float:
        """Current per-MPI-call interceptor overhead (e.g. TALP's)."""
        if self.pmpi is None:
            return 0.0
        return sum(
            interceptor.estimate_extra()
            for interceptor in self.pmpi.interceptors
            if hasattr(interceptor, "estimate_extra")
        )

    def _analytic(self, name: str) -> _AnalyticTotals:
        """Memoised per-invocation subtree cost (cycles/useful/MPI/events).

        Computed iteratively over the call DAG; back edges of recursion
        cycles contribute a single level (consistent with the depth cap
        applied to walked execution).  The memo is keyed to the XRay
        patch epoch: any patch/unpatch since it was filled invalidates
        it wholesale, because patched-sled dispatch costs feed the
        closure.
        """
        self._check_sled_caches()
        memo = self._analytic_memo
        if name in memo:
            return memo[name]
        in_progress: set[str] = set()
        stack: list[tuple[str, int]] = [(name, 0)]
        order: list[str] = []
        while stack:
            fn_name, state = stack.pop()
            if state == 0:
                if fn_name in memo or fn_name in in_progress:
                    continue
                in_progress.add(fn_name)
                stack.append((fn_name, 1))
                rec = self._record_of(fn_name)
                if rec is None or rec.is_mpi:
                    continue
                for site in rec.sites:
                    for target in site.targets:
                        if target not in memo and target not in in_progress:
                            stack.append((target, 0))
            else:
                order.append(fn_name)
        for fn_name in order:
            memo[fn_name] = self._analytic_of(fn_name, memo)
        return memo[name]

    def _analytic_of(
        self, name: str, memo: dict[str, _AnalyticTotals]
    ) -> _AnalyticTotals:
        rec = self._record_of(name)
        totals = _AnalyticTotals()
        if rec is None:
            return totals
        mf = rec.mf
        if rec.is_mpi:
            if self.pmpi is not None:
                cost = self.pmpi.comm.cost_of(mf.name)
                totals.cycles = cost
                totals.mpi_cycles = cost
                totals.mpi_calls = 1
            else:
                totals.cycles = mf.base_cost
            return totals
        totals.entries = 1
        totals.useful = mf.base_cost
        totals.cycles = mf.base_cost
        patched = (
            mf.xray_instrumented
            and self.xray_runtime is not None
            and self._is_patched(name)
        )
        if mf.xray_instrumented and self.xray_runtime is not None:
            if patched:
                per_sled = (
                    self.cost_model.patched_dispatch
                    + self.cost_model.handler_cost(self.tool)
                    + self.handler_extra
                )
            else:
                per_sled = self.cost_model.nop_sled
            totals.cycles += 2 * per_sled
        for site in rec.sites:
            count = site.effective
            if count == 0:
                continue
            sub = memo.get(site.targets[0], _AnalyticTotals())
            totals.cycles += count * sub.cycles
            totals.useful += count * sub.useful
            totals.mpi_cycles += count * sub.mpi_cycles
            totals.mpi_calls += count * sub.mpi_calls
            totals.entries += count * sub.entries
        if patched and self.tool == "talp" and totals.mpi_calls > 0:
            # mirror the walked path: a TALP region whose instance saw
            # MPI pays the POP accounting update on exit
            totals.cycles += self.cost_model.talp_mpi_region_update
        return totals

    # -- test hooks ---------------------------------------------------------------

    def defeat_memoization(self) -> None:
        """Swap every pure-structure cache for a write-discarding stand-in.

        Equivalence tests call this to force per-invocation target
        resolution and record building — the pre-memoisation behaviour —
        through the identical code path, then assert bit-for-bit equal
        :class:`RunResult` fields against a memoised engine.
        """
        self._target_cache = _NeverStore()
        self._records = _NeverStore()


def _as_ir_site(site: MachineCallSite):
    """Bridge a machine call site back to an IR site for target lookup."""
    from repro.program.ir import CallSite

    return CallSite(
        callee=site.callee,
        kind=site.kind,
        pointer_id=site.pointer_id,
        calls_per_invocation=max(site.count, 0),
    )
