"""Virtual-clock execution engine and overhead cost model."""

from repro.execution.clock import CYCLES_PER_SECOND, VirtualClock
from repro.execution.costs import CostModel
from repro.execution.engine import ExecutionEngine
from repro.execution.result import RunResult
from repro.execution.workload import Workload

__all__ = [
    "CYCLES_PER_SECOND",
    "CostModel",
    "ExecutionEngine",
    "RunResult",
    "VirtualClock",
    "Workload",
]
