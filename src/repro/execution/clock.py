"""The virtual clock: deterministic cycle accounting.

All timing in the reproduction is virtual.  The clock counts cycles;
:attr:`VirtualClock.seconds` converts using a nominal frequency so
reports read like the paper's wall-clock tables.  Nothing ever reads
the host's real time.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Nominal simulated core frequency used to convert cycles to seconds.
CYCLES_PER_SECOND = 2.0e9


@dataclass
class VirtualClock:
    cycles: float = 0.0
    frequency: float = CYCLES_PER_SECOND

    def advance(self, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative {cycles}")
        self.cycles += cycles

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    def now(self) -> float:
        """Current timestamp in cycles (for interval measurements)."""
        return self.cycles
