"""The overhead cost model — calibration of Table II's mechanisms.

Every constant is a virtual-cycle price of one concrete mechanism in the
real system.  The paper's qualitative results emerge from their
*relations*, which are grounded in how the tools work:

* An unpatched sled is a NOP sequence → ``nop_sled`` is near zero
  ("xray inactive" ≈ vanilla).
* A patched sled pays trampoline dispatch (register save + indirect
  call) before the handler runs.
* Score-P's handler builds/walks a call-path tree node and timestamps
  with PAPI-style precision → more expensive per event than TALP's
  region counter update (paper: full instrumentation hurts Score-P
  ~2× more than TALP).
* TALP additionally updates *every open monitoring region* at each MPI
  call through PMPI → its cost grows with the depth of instrumented
  regions enclosing MPI operations (paper: the ``mpi`` IC is *worse*
  under TALP than under Score-P, despite TALP's cheaper handler).
* Patching cost per sled (mprotect + rewrite) and per-function symbol
  resolution during startup drive Tinit, which therefore scales with
  the object count and sled count — seconds for OpenFOAM, far below
  its 50-minute recompile.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Virtual-cycle prices of the instrumentation mechanisms."""

    # -- steady-state event costs ------------------------------------------
    #: cost of flowing through an unpatched NOP sled
    nop_sled: float = 0.3
    #: trampoline dispatch once a sled is patched (register spill + jump)
    patched_dispatch: float = 25.0
    #: Score-P handler: call-path tree walk + metric read, per event
    scorep_event: float = 320.0
    #: TALP handler: region map lookup + counter update, per event
    talp_event: float = 200.0
    #: TALP PMPI wrapper: fixed bookkeeping per MPI call
    talp_pmpi_base: float = 60.0
    #: TALP PMPI bookkeeping per *open region* per MPI call
    talp_mpi_per_open_region: float = 60.0
    #: TALP region-stop POP accounting when MPI occurred inside the
    #: region instance (MPI-time attribution + efficiency counters).
    #: This is the term that makes ICs selected *by MPI reachability*
    #: disproportionately expensive under TALP (§VI-C: TALP's mpi
    #: variants cost more than Score-P's, although its plain handler is
    #: cheaper) — almost every region the mpi IC instruments enclosed
    #: MPI activity, so almost every exit pays the update.
    talp_mpi_region_update: float = 1600.0
    #: Score-P PMPI wrapper cost per MPI call (constant)
    scorep_mpi_wrapper: float = 180.0
    #: generic __cyg_profile_* shim on top of either tool
    cyg_shim: float = 15.0

    # -- startup (Tinit) costs -----------------------------------------------
    #: one-time measurement-library initialisation
    scorep_init_base: float = 0.4e9
    talp_init_base: float = 0.06e9
    #: reading + hashing one symbol during nm-based collection
    symbol_collect: float = 28_000.0
    #: translating one XRay function id via __xray_function_address
    id_translate: float = 3_000.0
    #: patching one sled (mprotect pair + byte rewrite, amortised)
    patch_sled: float = 55_000.0
    #: registering one DSO with the XRay runtime
    dso_register: float = 2.0e6
    #: parsing one IC entry at startup
    ic_parse_entry: float = 1_200.0

    # -- conversions -----------------------------------------------------------

    def handler_cost(self, tool: str) -> float:
        """Per-event handler cost for a measurement tool."""
        if tool == "scorep":
            return self.scorep_event + self.cyg_shim
        if tool == "talp":
            return self.talp_event + self.cyg_shim
        if tool == "none":
            return self.cyg_shim
        raise ValueError(f"unknown tool {tool!r}")
