"""Run results: the measured quantities behind Table II rows."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.clock import CYCLES_PER_SECOND


@dataclass
class RunResult:
    """Outcome of one simulated application run.

    ``t_init_cycles`` covers everything before ``main`` (XRay sled
    resolution, DynCaPI IC load, symbol collection, patching, tool
    init); ``t_app_cycles`` is the time from entering ``main`` to
    program exit, including instrumentation overhead.
    """

    app_name: str
    tool: str
    config_name: str
    t_init_cycles: float = 0.0
    t_app_cycles: float = 0.0
    frequency: float = CYCLES_PER_SECOND

    entry_events: int = 0
    exit_events: int = 0
    #: events charged analytically (capped repetitions), not walked
    charged_only_calls: int = 0
    mpi_calls: int = 0
    mpi_cycles: float = 0.0
    useful_cycles: float = 0.0
    patched_functions: int = 0
    patched_sleds: int = 0
    per_function_calls: dict[str, int] = field(default_factory=dict)

    @property
    def t_init(self) -> float:
        """Initialisation time in virtual seconds (paper's Tinit)."""
        return self.t_init_cycles / self.frequency

    @property
    def t_total(self) -> float:
        """Total runtime in virtual seconds (paper's Ttotal)."""
        return (self.t_init_cycles + self.t_app_cycles) / self.frequency

    @property
    def overhead_vs(self) -> float:
        """Placeholder until compared against a vanilla run."""
        raise AttributeError("use overhead_against(vanilla)")

    def overhead_against(self, vanilla: "RunResult") -> float:
        """Relative Ttotal overhead vs an uninstrumented run."""
        if vanilla.t_total <= 0:
            return 0.0
        return self.t_total / vanilla.t_total - 1.0
