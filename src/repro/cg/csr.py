"""Frozen CSR snapshots of a call graph and flat-array graph kernels.

The selection pipeline's graph analyses (reachability sweeps, Tarjan
condensation, the statement-aggregation DP, BFS call depths) used to
churn per-node ``dict``/``set`` objects, which dominates coarse
selection time at the paper's 410,666-node OpenFOAM scale.  This module
replaces that with a *snapshot* model:

* :class:`CsrSnapshot` — an immutable compressed-sparse-row view of one
  :class:`~repro.cg.graph.CallGraph` version: ``int32``
  ``indptr``/``indices`` arrays for both successor and predecessor
  adjacency, an ``alive`` mask over the id space (removed nodes leave
  tombstones), and dense numpy metadata columns.  Snapshots are built by
  :meth:`CallGraph.csr` and cached against the graph's mutation
  ``version`` — any mutation invalidates the snapshot wholesale, so a
  stale snapshot can never describe the live graph.

* flat-array kernels over a snapshot's arrays: frontier-vectorised
  reachability (:func:`sweep`), an iterative Tarjan SCC over flat
  ``index``/``low``/``on_stack``/``comp_of`` arrays (:func:`tarjan_scc`),
  vectorised condensation-edge extraction via packed 64-bit keys and
  ``np.unique`` (:func:`condensation_edges`), Kahn topological order and
  the longest-path DP over flat indegree/best arrays (:func:`topo_order`,
  :func:`longest_path_dp`), and per-frontier vectorised BFS depths
  (:func:`bfs_depths`).

The kernels are pure functions of arrays, so other subsystems with their
own small graphs (the compiler's recursion-cycle detection) reuse them
through :func:`edges_to_csr` instead of carrying private SCC
implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.cg.graph import CallGraph

#: dtype of all snapshot index arrays (ids and CSR offsets)
INDEX_DTYPE = np.int32

#: below this many nodes+edges, per-wave numpy dispatch overhead beats
#: the vectorisation win and callers should prefer plain-Python
#: traversals (the bit-for-bit identical slow path)
VECTOR_MIN_SIZE = 32768


def edges_to_csr(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-sorted ``(indptr, indices)`` CSR from parallel edge arrays.

    Rows appear in id order and each row's targets are sorted, so the
    layout is deterministic regardless of input edge order.  Duplicate
    edges are preserved (graph construction dedupes via sets; ad-hoc
    callers like the compiler tolerate duplicates in the kernels).
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    order = np.argsort((sources << 32) | targets, kind="stable")
    indices = targets[order].astype(INDEX_DTYPE)
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(sources, minlength=n), out=indptr[1:], dtype=np.int64)
    return indptr, indices


def splice_csr(
    old_indptr: np.ndarray,
    old_indices: np.ndarray,
    rows: Sequence[int],
    row_values: Sequence[np.ndarray],
    n_new: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Rebuild ``(indptr, indices)`` with ``rows`` replaced or appended.

    ``rows`` must be sorted ascending, parallel to ``row_values`` (each
    a sorted ``INDEX_DTYPE`` target array); rows at or past the old row
    count are appends.  Untouched row spans are block-copied from the
    old arrays, so the cost is O(touched rows) Python iterations plus
    memcpy — and because :func:`edges_to_csr` lays rows out in id order
    with sorted targets, the result is bit-identical to a from-scratch
    build of the same adjacency.
    """
    old_n = old_indptr.size - 1
    counts = np.zeros(n_new, dtype=np.int64)
    counts[:old_n] = np.diff(old_indptr)
    for row, values in zip(rows, row_values):
        counts[row] = values.size
    indptr = np.zeros(n_new + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:], dtype=np.int64)
    indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
    prev = 0
    for row, values in zip(rows, row_values):
        stop = min(row, old_n)
        if stop > prev:
            src0, src1 = old_indptr[prev], old_indptr[stop]
            dst0 = indptr[prev]
            indices[dst0 : dst0 + (src1 - src0)] = old_indices[src0:src1]
        if values.size:
            dst = indptr[row]
            indices[dst : dst + values.size] = values
        prev = row + 1
    if prev < old_n:
        src0, src1 = old_indptr[prev], old_indptr[old_n]
        dst0 = indptr[prev]
        indices[dst0 : dst0 + (src1 - src0)] = old_indices[src0:src1]
    return indptr, indices


def _sorted_row(adjacency: Sequence[set], row: int) -> np.ndarray:
    """One adjacency row as a sorted ``INDEX_DTYPE`` target array."""
    targets = adjacency[row]
    out = np.fromiter(targets, dtype=INDEX_DTYPE, count=len(targets))
    out.sort()
    return out


def _extend(arr: np.ndarray, n: int, fill) -> np.ndarray:
    """``arr`` grown to length ``n`` with ``fill`` (shared when equal)."""
    if arr.shape[0] == n:
        return arr
    out = np.full(n, fill, dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


def _gather(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated adjacency rows of ``frontier`` (ragged gather)."""
    starts = indptr[frontier].astype(np.int64)
    counts = indptr[frontier + 1].astype(np.int64) - starts
    total = int(counts.sum())
    if total == 0:
        return indices[:0]
    ends = starts + counts
    offsets = np.cumsum(counts)
    take = np.repeat(ends - offsets, counts) + np.arange(total, dtype=np.int64)
    return indices[take]


def sweep(
    indptr: np.ndarray,
    indices: np.ndarray,
    seeds: Iterable[int],
    n: int,
    within: np.ndarray | None = None,
) -> np.ndarray:
    """Frontier-vectorised reachability: boolean visited mask over ids.

    Each iteration gathers the whole frontier's adjacency in one ragged
    numpy gather, drops already-visited targets and dedupes — no
    per-node Python iteration.  ``within`` optionally restricts the
    sweep to a node subset (targets outside the mask are never entered);
    seeds are assumed to lie inside it.  The restricted form is what the
    forward–backward SCC recursion runs on.
    """
    visited = np.zeros(n, dtype=bool)
    frontier = np.unique(np.fromiter(seeds, dtype=np.int64))
    if frontier.size == 0:
        return visited
    visited[frontier] = True
    while frontier.size:
        neighbors = _gather(indptr, indices, frontier)
        if within is None:
            neighbors = neighbors[~visited[neighbors]]
        else:
            neighbors = neighbors[within[neighbors] & ~visited[neighbors]]
        if neighbors.size == 0:
            break
        frontier = np.unique(neighbors.astype(np.int64))
        visited[frontier] = True
    return visited


def bfs_depths(
    indptr: np.ndarray, indices: np.ndarray, root: int, n: int
) -> np.ndarray:
    """Shortest hop count from ``root`` per id; ``-1`` where unreachable.

    Per-frontier vectorised BFS: one ragged gather per level.
    """
    depth = np.full(n, -1, dtype=INDEX_DTYPE)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors = _gather(indptr, indices, frontier)
        neighbors = neighbors[depth[neighbors] == -1]
        if neighbors.size == 0:
            break
        frontier = np.unique(neighbors.astype(np.int64))
        depth[frontier] = level
    return depth


def peel_topological(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    max_waves: int | None = None,
) -> list[np.ndarray] | None:
    """Kahn wave-peeling of the whole graph into topological waves.

    Repeatedly removes every current zero-in-degree node in one
    vectorised wave (indegree updates via ``bincount`` subtraction, new
    frontier via one boolean scan).  Returns the waves — a valid
    topological order with all of a wave's predecessors in earlier
    waves — when the graph is acyclic, or ``None`` when a cycle blocks
    peeling or the wave count exceeds ``max_waves`` (a pathologically
    deep chain, where the sequential Tarjan fallback is cheaper than
    per-wave numpy overhead).
    """
    indegree = np.bincount(indices, minlength=n)
    frontier = np.flatnonzero(indegree == 0)
    remaining = n
    if max_waves is None:
        max_waves = max(512, 4 * int(np.sqrt(n)))
    waves: list[np.ndarray] = []
    while frontier.size:
        if len(waves) >= max_waves:
            return None
        waves.append(frontier)
        remaining -= frontier.size
        targets = _gather(indptr, indices, frontier)
        removed = np.bincount(targets, minlength=n)
        indegree -= removed
        frontier = np.flatnonzero((indegree == 0) & (removed > 0))
    return waves if remaining == 0 else None


def forward_backward_scc(
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    seeds: Iterable[int],
    n: int,
) -> tuple[np.ndarray, list[list[int]]]:
    """Vectorised forward–backward SCC over the seeds' reachable subgraph.

    The FB recursion (Fleischer/Hendrickson/Pınar): pick a pivot, its
    SCC is forward-reach ∩ backward-reach within the current subset;
    the three remainders (forward-only, backward-only, untouched) are
    independent subproblems.  Every reach runs as a restricted
    :func:`sweep` — frontier-vectorised ragged gathers — so cycle-heavy
    graphs that defeat the wave fast path avoid the sequential
    per-node DFS of :func:`tarjan_scc`.

    Returns ``(comp_of, comp_members)`` shaped like :func:`tarjan_scc`:
    ``comp_of[nid]`` is ``-1`` outside the reachable subgraph, and
    component ids are assigned in an unspecified (but deterministic)
    emission order — consumers must order via :func:`topo_order`.
    """
    comp_of = np.full(n, -1, dtype=INDEX_DTYPE)
    comp_members: list[list[int]] = []
    visited = sweep(succ_indptr, succ_indices, seeds, n)
    roots = np.flatnonzero(visited)
    if roots.size == 0:
        return comp_of, comp_members
    worklist: list[np.ndarray] = [roots]
    while worklist:
        nodes = worklist.pop()
        if nodes.size == 0:
            continue
        if nodes.size == 1:
            nid = int(nodes[0])
            comp_of[nid] = len(comp_members)
            comp_members.append([nid])
            continue
        allowed = np.zeros(n, dtype=bool)
        allowed[nodes] = True
        pivot = (int(nodes[0]),)
        fwd = sweep(succ_indptr, succ_indices, pivot, n, within=allowed)
        bwd = sweep(pred_indptr, pred_indices, pivot, n, within=allowed)
        scc_mask = fwd & bwd
        members = np.flatnonzero(scc_mask)
        comp_of[members] = len(comp_members)
        comp_members.append(members.tolist())
        worklist.append(np.flatnonzero(fwd & ~scc_mask))
        worklist.append(np.flatnonzero(bwd & ~scc_mask))
        rest = ~(fwd | bwd)
        worklist.append(nodes[rest[nodes]])
    return comp_of, comp_members


def scc_condense(
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    seeds: Iterable[int],
    n: int,
) -> tuple[np.ndarray, list[list[int]]]:
    """SCC kernel dispatch for cyclic graphs: FB at scale, Tarjan below.

    Small graphs stay on the sequential Tarjan (per-sweep numpy dispatch
    costs more than it vectorises there, the same
    :data:`VECTOR_MIN_SIZE` threshold as every other kernel); large
    cyclic graphs take the forward–backward recursion.  Component *ids*
    may differ between the kernels but the partition is identical (SCCs
    are unique), and every consumer orders components explicitly via
    :func:`topo_order`.
    """
    if n + succ_indices.size < VECTOR_MIN_SIZE:
        return tarjan_scc(succ_indptr, succ_indices, seeds, n)
    return forward_backward_scc(
        succ_indptr, succ_indices, pred_indptr, pred_indices, seeds, n
    )


def condense(
    snapshot: "CsrSnapshot", root_id: int
) -> tuple[np.ndarray, list[list[int]]]:
    """SCC condensation of the subgraph reachable from ``root_id``.

    Hybrid kernel: when the snapshot's cached wave order proves the
    graph acyclic (the overwhelmingly common call-graph case), every
    reachable node is its own component and the whole condensation is
    one sweep plus a vectorised relabel; otherwise the flat-array
    Tarjan takes over.  Returns ``(comp_of, comp_members)`` like
    :func:`tarjan_scc`.
    """
    indptr, indices = snapshot.succ_indptr, snapshot.succ_indices
    if snapshot.topological_waves() is None:
        return scc_condense(
            indptr,
            indices,
            snapshot.pred_indptr,
            snapshot.pred_indices,
            (root_id,),
            snapshot.n,
        )
    visited = sweep(indptr, indices, (root_id,), snapshot.n)
    order = np.flatnonzero(visited)
    comp_of = np.full(snapshot.n, -1, dtype=INDEX_DTYPE)
    comp_of[order] = np.arange(order.size, dtype=INDEX_DTYPE)
    comp_members = [[nid] for nid in order.tolist()]
    return comp_of, comp_members


def dag_longest_path(
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    waves: Sequence[np.ndarray],
    metric: np.ndarray,
    root: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Longest-path DP from ``root`` straight over an acyclic node graph.

    ``waves`` must be topological waves of the whole graph (from
    :func:`peel_topological`); the condensation is the identity there,
    so the DP pulls over predecessor adjacency wave-by-wave: one ragged
    gather plus segmented ``reduceat`` reductions per wave.  Semantics
    mirror the dict baseline: a node's value is its metric plus the max
    over *reached* predecessors' values, and it joins the reached set
    only when that candidate beats the ``-1`` unreached sentinel
    (strictly) — so negative metrics drop nodes exactly like the
    baseline does.  Arithmetic runs in the metric array's dtype
    (``int64``/``float64``); callers needing exact arbitrary-magnitude
    Python-int sums must use the flat-list :func:`longest_path_dp`.
    """
    n = pred_indptr.size - 1
    pred_counts = np.diff(pred_indptr)
    best = np.full(n, -1, dtype=metric.dtype)
    best[root] = metric[root]
    reached = np.zeros(n, dtype=bool)
    reached[root] = True
    sentinel = (
        np.iinfo(metric.dtype).min
        if metric.dtype.kind in "iu"
        else -np.inf
    )
    for wave in waves:
        # nodes without predecessors keep their seed value (root) or
        # stay unreached; they must be dropped so reduceat sees no
        # empty segments
        pulling = wave[pred_counts[wave] > 0]
        if pulling.size == 0:
            continue
        preds = _gather(pred_indptr, pred_indices, pulling)
        starts = np.zeros(pulling.size, dtype=np.int64)
        np.cumsum(pred_counts[pulling][:-1], out=starts[1:], dtype=np.int64)
        pred_reached = reached[preds]
        has_reached_pred = np.logical_or.reduceat(pred_reached, starts)
        if not has_reached_pred.any():
            continue
        seg_best = np.maximum.reduceat(
            np.where(pred_reached, best[preds], sentinel), starts
        )
        pulled = pulling[has_reached_pred]
        candidates = metric[pulled] + seg_best[has_reached_pred]
        assigned = candidates > -1
        updated = pulled[assigned]
        best[updated] = candidates[assigned]
        reached[updated] = True
    return best, reached


def tarjan_scc(
    indptr: np.ndarray,
    indices: np.ndarray,
    seeds: Iterable[int],
    n: int,
) -> tuple[np.ndarray, list[list[int]]]:
    """Iterative Tarjan SCC over CSR adjacency, restricted to the
    subgraph reachable from ``seeds``.

    All DFS state lives in flat arrays indexed by node id — ``index``,
    ``low``, ``on_stack`` and the emitted ``comp_of`` labels — with an
    explicit edge-pointer work stack; no per-node dicts or materialised
    children lists.  Returns ``(comp_of, comp_members)`` where
    ``comp_of[nid]`` is the component id (``-1`` for unvisited ids) and
    ``comp_members[cid]`` lists member node ids.  Component ids are
    assigned in emission order (reverse-topological for the visited
    subgraph), but callers must not rely on that — use
    :func:`topo_order`.
    """
    # flat per-id state; plain lists index faster than numpy scalars in
    # the unavoidably sequential DFS loop
    indptr_l: Sequence[int] = indptr.tolist()
    indices_l: Sequence[int] = indices.tolist()
    index = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    comp_of = [-1] * n
    scc_stack: list[int] = []
    comp_members: list[list[int]] = []
    counter = 0
    # DFS work stack as two parallel flat lists: node, next edge offset
    work_node: list[int] = []
    work_edge: list[int] = []

    for seed in seeds:
        if index[seed] != -1:
            continue
        index[seed] = low[seed] = counter
        counter += 1
        scc_stack.append(seed)
        on_stack[seed] = 1
        work_node.append(seed)
        work_edge.append(indptr_l[seed])
        while work_node:
            node = work_node[-1]
            edge = work_edge[-1]
            if edge < indptr_l[node + 1]:
                work_edge[-1] = edge + 1
                child = indices_l[edge]
                child_index = index[child]
                if child_index == -1:
                    index[child] = low[child] = counter
                    counter += 1
                    scc_stack.append(child)
                    on_stack[child] = 1
                    work_node.append(child)
                    work_edge.append(indptr_l[child])
                elif on_stack[child] and child_index < low[node]:
                    low[node] = child_index
            else:
                work_node.pop()
                work_edge.pop()
                lowlink = low[node]
                if work_node:
                    parent = work_node[-1]
                    if lowlink < low[parent]:
                        low[parent] = lowlink
                if lowlink == index[node]:
                    cid = len(comp_members)
                    members: list[int] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack[member] = 0
                        comp_of[member] = cid
                        members.append(member)
                        if member == node:
                            break
                    comp_members.append(members)
    return np.asarray(comp_of, dtype=INDEX_DTYPE), comp_members


def condensation_edges(
    comp_of: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    ncomp: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Unique cross-component edges of the condensation DAG, as CSR.

    Vectorised id remap: every graph edge is relabelled through
    ``comp_of``, intra-component and unvisited-endpoint edges are masked
    out, and the survivors are deduplicated via ``np.unique`` on packed
    ``(src << 32) | dst`` 64-bit keys.
    """
    counts = np.diff(indptr)
    comp_src = np.repeat(comp_of, counts).astype(np.int64)
    comp_dst = comp_of[indices].astype(np.int64)
    keep = (comp_src >= 0) & (comp_dst >= 0) & (comp_src != comp_dst)
    packed = np.unique((comp_src[keep] << 32) | comp_dst[keep])
    src = (packed >> 32).astype(np.int64)
    dst = (packed & 0xFFFFFFFF).astype(INDEX_DTYPE)
    cindptr = np.zeros(ncomp + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(src, minlength=ncomp), out=cindptr[1:], dtype=np.int64)
    return cindptr, dst


def topo_order(
    cindptr: np.ndarray, cindices: np.ndarray, ncomp: int
) -> list[int]:
    """Kahn topological order (callers first) over condensation CSR.

    Indegrees are computed in one vectorised ``bincount``; the ready
    stack and the relaxation loop run over flat lists.
    """
    indegree = np.bincount(cindices, minlength=ncomp).tolist()
    cindptr_l = cindptr.tolist()
    cindices_l = cindices.tolist()
    ready = [cid for cid in range(ncomp) if indegree[cid] == 0]
    order: list[int] = []
    while ready:
        cid = ready.pop()
        order.append(cid)
        for offset in range(cindptr_l[cid], cindptr_l[cid + 1]):
            target = cindices_l[offset]
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
    return order


def longest_path_dp(
    cindptr: np.ndarray,
    cindices: np.ndarray,
    order: Sequence[int],
    comp_metric: Sequence,
    root_comp: int,
) -> tuple[list, bytearray]:
    """Longest-path DP from ``root_comp`` over the condensation DAG.

    Returns ``(best, reached)``: per-component best path sum (flat list,
    Python numbers — exact for arbitrary metric magnitudes) and the
    reachability-from-root byte mask.  Relaxation runs in topological
    order over flat lists: the condensation is typically tiny relative
    to the graph, where per-component numpy slicing costs more than it
    vectorises, and the ``-1`` unreached sentinel semantics of the dict
    baseline carry over exactly (a candidate replaces the incumbent only
    when strictly greater).
    """
    ncomp = len(comp_metric)
    cindptr_l = cindptr.tolist()
    cindices_l = cindices.tolist()
    metric_l = comp_metric.tolist() if hasattr(comp_metric, "tolist") else list(
        comp_metric
    )
    best: list = [-1] * ncomp
    reached = bytearray(ncomp)
    best[root_comp] = metric_l[root_comp]
    reached[root_comp] = 1
    for cid in order:
        if not reached[cid]:
            continue
        base = best[cid]
        for offset in range(cindptr_l[cid], cindptr_l[cid + 1]):
            target = cindices_l[offset]
            candidate = base + metric_l[target]
            if candidate > best[target]:
                best[target] = candidate
                reached[target] = 1
    return best, reached


class CsrSnapshot:
    """Immutable CSR view of one :class:`CallGraph` version.

    Built by :meth:`CallGraph.csr`; every accessor is valid only while
    the graph's ``version`` equals :attr:`version` (the graph-side cache
    guarantees callers never see a stale snapshot, and
    :meth:`meta_column` re-checks defensively).
    """

    __slots__ = (
        "version",
        "n",
        "succ_indptr",
        "succ_indices",
        "pred_indptr",
        "pred_indices",
        "alive",
        "live_ids",
        "analyses",
        "refreshed_from",
        "_graph",
        "_meta_columns",
        "_waves",
    )

    def __init__(self, graph: "CallGraph", *, _base=None, _delta=None):
        self._graph = graph
        self.version = graph.version
        n = graph.id_bound
        self.n = n
        self._meta_columns: dict[str, np.ndarray] = {}
        self._waves: list[np.ndarray] | None | bool = False
        #: root-keyed analysis memo: ``(kind, root_id) -> array/frozenset``
        #: ("reach" mask, "depth" BFS array, "agg" statement totals,
        #: "reachset" id frozenset) — filled by :mod:`repro.cg.analysis`,
        #: carried through :meth:`refresh` when the delta leaves the
        #: root's reachable set untouched
        self.analyses: dict[tuple[str, int], object] = {}
        #: version this snapshot was delta-refreshed from (``None`` for a
        #: from-scratch build) — service stats report on it
        self.refreshed_from: int | None = None
        if _base is not None and _delta is not None:
            self._refresh_from(graph, _base, _delta)
            return
        succ = graph._succ
        counts = np.fromiter((len(s) for s in succ), dtype=np.int64, count=n)
        edge_total = int(counts.sum())
        targets = np.fromiter(
            (t for s in succ for t in s), dtype=np.int64, count=edge_total
        )
        sources = np.repeat(np.arange(n, dtype=np.int64), counts)
        self.succ_indptr, self.succ_indices = edges_to_csr(n, sources, targets)
        self.pred_indptr, self.pred_indices = edges_to_csr(n, targets, sources)
        alive = np.zeros(n, dtype=bool)
        live = np.fromiter(graph._ids.values(), dtype=np.int64, count=len(graph))
        alive[live] = True
        self.alive = alive
        self.live_ids = np.flatnonzero(alive).astype(INDEX_DTYPE)

    def refresh(
        self, graph: "CallGraph", *, max_rows: int | None = None
    ) -> "CsrSnapshot":
        """A snapshot of ``graph``'s *current* version, built incrementally.

        Consumes the mutation journal since this snapshot's version:
        touched CSR rows are re-spliced, new rows appended, the alive
        mask, meta columns and root-keyed analyses extended/patched —
        with every untouched span block-copied (or shared outright), so
        the cost is O(delta), not O(graph).  The hard contract is
        bit-identity: the produced arrays equal a from-scratch
        ``CsrSnapshot(graph)`` at the new version (property-tested).

        Falls back to a full rebuild when the snapshot is already
        current-version-equal (returns ``self``), the journal truncated,
        the snapshot belongs to a different graph, or the delta touches
        more than ``max_rows`` CSR rows (``None`` = no limit).
        """
        if graph is not self._graph:
            return CsrSnapshot(graph)
        if graph.version == self.version:
            return self
        delta = graph.delta_since(self.version)
        if delta is None or (max_rows is not None and delta.row_count > max_rows):
            return CsrSnapshot(graph)
        return CsrSnapshot(graph, _base=self, _delta=delta)

    def _refresh_from(self, graph: "CallGraph", base, delta) -> None:
        self.refreshed_from = base.version
        n, old_n = self.n, base.n
        if delta.succ_rows:
            rows = sorted(delta.succ_rows)
            values = [_sorted_row(graph._succ, r) for r in rows]
            self.succ_indptr, self.succ_indices = splice_csr(
                base.succ_indptr, base.succ_indices, rows, values, n
            )
        else:
            # no succ rows touched implies no new ids either
            self.succ_indptr, self.succ_indices = (
                base.succ_indptr,
                base.succ_indices,
            )
        if delta.pred_rows:
            rows = sorted(delta.pred_rows)
            values = [_sorted_row(graph._pred, r) for r in rows]
            self.pred_indptr, self.pred_indices = splice_csr(
                base.pred_indptr, base.pred_indices, rows, values, n
            )
        else:
            self.pred_indptr, self.pred_indices = (
                base.pred_indptr,
                base.pred_indices,
            )
        if delta.universe_changed:
            alive = np.zeros(n, dtype=bool)
            alive[:old_n] = base.alive
            for nid in delta.added:
                alive[nid] = True
            for nid in delta.removed:
                alive[nid] = False
            self.alive = alive
            self.live_ids = np.flatnonzero(alive).astype(INDEX_DTYPE)
        else:
            self.alive = base.alive
            self.live_ids = base.live_ids
        # waves are a pure function of the succ arrays: share when unchanged
        if self.succ_indptr is base.succ_indptr and base._waves is not False:
            self._waves = base._waves
        # meta columns: extend and patch only the touched ids
        patch = delta.added | delta.meta_touched | delta.removed
        for attr, column in base._meta_columns.items():
            if not patch and n == old_n:
                self._meta_columns[attr] = column
                continue
            new_column = np.zeros(n, dtype=column.dtype)
            new_column[:old_n] = column
            for nid in patch:
                node = graph._nodes[nid]
                value = getattr(node.meta, attr) if node is not None else None
                new_column[nid] = value or 0
            self._meta_columns[attr] = new_column
        # root-keyed analyses: carry those whose supporting reachable set
        # the delta provably left alone (no touched id is reachable; new
        # ids cannot be reachable then — any edge making one reachable
        # would touch an old reachable id)
        touched = [
            t
            for t in (delta.struct_touched | delta.meta_touched)
            if t < old_n
        ]
        touched_arr = np.fromiter(touched, dtype=np.int64, count=len(touched))
        for (kind, root), reach in base.analyses.items():
            if kind != "reach":
                continue
            if touched_arr.size and bool(reach[touched_arr].any()):
                continue
            self.analyses[("reach", root)] = _extend(reach, n, False)
            depth = base.analyses.get(("depth", root))
            if depth is not None:
                self.analyses[("depth", root)] = _extend(depth, n, -1)
            agg = base.analyses.get(("agg", root))
            if agg is not None:
                self.analyses[("agg", root)] = _extend(agg, n, 0)
            reachset = base.analyses.get(("reachset", root))
            if reachset is not None:
                self.analyses[("reachset", root)] = reachset

    @property
    def graph(self) -> "CallGraph":
        """The snapshotted graph, checked to still be at this version.

        The evaluate phase of the compile/evaluate split runs against a
        supplied snapshot (:func:`repro.core.pipeline.evaluate_compiled`)
        and must never silently read a graph that moved on — a stale
        snapshot raises instead of aliasing the live structure.
        """
        if self._graph.version != self.version:
            raise RuntimeError(
                "stale CsrSnapshot: the graph mutated since csr() was taken"
            )
        return self._graph

    @property
    def nbytes(self) -> int:
        """Resident bytes of the snapshot's numpy arrays.

        Used by the service-layer :class:`~repro.service.GraphStore` for
        byte-budgeted LRU eviction.  Includes lazily-built caches (meta
        columns, topological waves) at their current size.
        """
        total = (
            self.succ_indptr.nbytes
            + self.succ_indices.nbytes
            + self.pred_indptr.nbytes
            + self.pred_indices.nbytes
            + self.alive.nbytes
            + self.live_ids.nbytes
        )
        total += sum(column.nbytes for column in self._meta_columns.values())
        total += sum(
            value.nbytes
            for value in self.analyses.values()
            if isinstance(value, np.ndarray)
        )
        if isinstance(self._waves, list):
            total += sum(wave.nbytes for wave in self._waves)
        return total

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.succ_indptr)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.pred_indptr)

    def topological_waves(self) -> list[np.ndarray] | None:
        """Cached global Kahn waves; ``None`` when the graph has a cycle.

        A root-independent structural property of the snapshot (like
        :meth:`meta_column`): computed on first use, then shared by every
        condensation/aggregation over this graph version.
        """
        if self._waves is False:
            self._waves = peel_topological(
                self.succ_indptr, self.succ_indices, self.n
            )
        return self._waves

    def meta_column(self, attr: str, dtype=np.int64) -> np.ndarray:
        """Dense numpy column of one numeric/boolean ``NodeMeta`` attribute.

        Tombstone slots hold 0.  Cached on the snapshot for its lifetime
        (the underlying graph column cannot change while the versions
        match).
        """
        cached = self._meta_columns.get(attr)
        if cached is not None:
            return cached
        if self._graph.version != self.version:
            raise RuntimeError(
                "stale CsrSnapshot: the graph mutated since csr() was taken"
            )
        raw = self._graph.meta_column(attr)
        column = np.fromiter(
            (value or 0 for value in raw), dtype=dtype, count=self.n
        )
        self._meta_columns[attr] = column
        return column
