"""Frozen CSR snapshots of a call graph and flat-array graph kernels.

The selection pipeline's graph analyses (reachability sweeps, Tarjan
condensation, the statement-aggregation DP, BFS call depths) used to
churn per-node ``dict``/``set`` objects, which dominates coarse
selection time at the paper's 410,666-node OpenFOAM scale.  This module
replaces that with a *snapshot* model:

* :class:`CsrSnapshot` — an immutable compressed-sparse-row view of one
  :class:`~repro.cg.graph.CallGraph` version: ``int32``
  ``indptr``/``indices`` arrays for both successor and predecessor
  adjacency, an ``alive`` mask over the id space (removed nodes leave
  tombstones), and dense numpy metadata columns.  Snapshots are built by
  :meth:`CallGraph.csr` and cached against the graph's mutation
  ``version`` — any mutation invalidates the snapshot wholesale, so a
  stale snapshot can never describe the live graph.

* flat-array kernels over a snapshot's arrays: frontier-vectorised
  reachability (:func:`sweep`), an iterative Tarjan SCC over flat
  ``index``/``low``/``on_stack``/``comp_of`` arrays (:func:`tarjan_scc`),
  vectorised condensation-edge extraction via packed 64-bit keys and
  ``np.unique`` (:func:`condensation_edges`), Kahn topological order and
  the longest-path DP over flat indegree/best arrays (:func:`topo_order`,
  :func:`longest_path_dp`), and per-frontier vectorised BFS depths
  (:func:`bfs_depths`).

The kernels are pure functions of arrays, so other subsystems with their
own small graphs (the compiler's recursion-cycle detection) reuse them
through :func:`edges_to_csr` instead of carrying private SCC
implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.cg.graph import CallGraph

#: dtype of all snapshot index arrays (ids and CSR offsets)
INDEX_DTYPE = np.int32

#: below this many nodes+edges, per-wave numpy dispatch overhead beats
#: the vectorisation win and callers should prefer plain-Python
#: traversals (the bit-for-bit identical slow path)
VECTOR_MIN_SIZE = 32768


def edges_to_csr(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-sorted ``(indptr, indices)`` CSR from parallel edge arrays.

    Rows appear in id order and each row's targets are sorted, so the
    layout is deterministic regardless of input edge order.  Duplicate
    edges are preserved (graph construction dedupes via sets; ad-hoc
    callers like the compiler tolerate duplicates in the kernels).
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    order = np.argsort((sources << 32) | targets, kind="stable")
    indices = targets[order].astype(INDEX_DTYPE)
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(sources, minlength=n), out=indptr[1:], dtype=np.int64)
    return indptr, indices


def _gather(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated adjacency rows of ``frontier`` (ragged gather)."""
    starts = indptr[frontier].astype(np.int64)
    counts = indptr[frontier + 1].astype(np.int64) - starts
    total = int(counts.sum())
    if total == 0:
        return indices[:0]
    ends = starts + counts
    offsets = np.cumsum(counts)
    take = np.repeat(ends - offsets, counts) + np.arange(total, dtype=np.int64)
    return indices[take]


def sweep(
    indptr: np.ndarray, indices: np.ndarray, seeds: Iterable[int], n: int
) -> np.ndarray:
    """Frontier-vectorised reachability: boolean visited mask over ids.

    Each iteration gathers the whole frontier's adjacency in one ragged
    numpy gather, drops already-visited targets and dedupes — no
    per-node Python iteration.
    """
    visited = np.zeros(n, dtype=bool)
    frontier = np.unique(np.fromiter(seeds, dtype=np.int64))
    if frontier.size == 0:
        return visited
    visited[frontier] = True
    while frontier.size:
        neighbors = _gather(indptr, indices, frontier)
        neighbors = neighbors[~visited[neighbors]]
        if neighbors.size == 0:
            break
        frontier = np.unique(neighbors.astype(np.int64))
        visited[frontier] = True
    return visited


def bfs_depths(
    indptr: np.ndarray, indices: np.ndarray, root: int, n: int
) -> np.ndarray:
    """Shortest hop count from ``root`` per id; ``-1`` where unreachable.

    Per-frontier vectorised BFS: one ragged gather per level.
    """
    depth = np.full(n, -1, dtype=INDEX_DTYPE)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors = _gather(indptr, indices, frontier)
        neighbors = neighbors[depth[neighbors] == -1]
        if neighbors.size == 0:
            break
        frontier = np.unique(neighbors.astype(np.int64))
        depth[frontier] = level
    return depth


def peel_topological(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    max_waves: int | None = None,
) -> list[np.ndarray] | None:
    """Kahn wave-peeling of the whole graph into topological waves.

    Repeatedly removes every current zero-in-degree node in one
    vectorised wave (indegree updates via ``bincount`` subtraction, new
    frontier via one boolean scan).  Returns the waves — a valid
    topological order with all of a wave's predecessors in earlier
    waves — when the graph is acyclic, or ``None`` when a cycle blocks
    peeling or the wave count exceeds ``max_waves`` (a pathologically
    deep chain, where the sequential Tarjan fallback is cheaper than
    per-wave numpy overhead).
    """
    indegree = np.bincount(indices, minlength=n)
    frontier = np.flatnonzero(indegree == 0)
    remaining = n
    if max_waves is None:
        max_waves = max(512, 4 * int(np.sqrt(n)))
    waves: list[np.ndarray] = []
    while frontier.size:
        if len(waves) >= max_waves:
            return None
        waves.append(frontier)
        remaining -= frontier.size
        targets = _gather(indptr, indices, frontier)
        removed = np.bincount(targets, minlength=n)
        indegree -= removed
        frontier = np.flatnonzero((indegree == 0) & (removed > 0))
    return waves if remaining == 0 else None


def condense(
    snapshot: "CsrSnapshot", root_id: int
) -> tuple[np.ndarray, list[list[int]]]:
    """SCC condensation of the subgraph reachable from ``root_id``.

    Hybrid kernel: when the snapshot's cached wave order proves the
    graph acyclic (the overwhelmingly common call-graph case), every
    reachable node is its own component and the whole condensation is
    one sweep plus a vectorised relabel; otherwise the flat-array
    Tarjan takes over.  Returns ``(comp_of, comp_members)`` like
    :func:`tarjan_scc`.
    """
    indptr, indices = snapshot.succ_indptr, snapshot.succ_indices
    if snapshot.topological_waves() is None:
        return tarjan_scc(indptr, indices, (root_id,), snapshot.n)
    visited = sweep(indptr, indices, (root_id,), snapshot.n)
    order = np.flatnonzero(visited)
    comp_of = np.full(snapshot.n, -1, dtype=INDEX_DTYPE)
    comp_of[order] = np.arange(order.size, dtype=INDEX_DTYPE)
    comp_members = [[nid] for nid in order.tolist()]
    return comp_of, comp_members


def dag_longest_path(
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    waves: Sequence[np.ndarray],
    metric: np.ndarray,
    root: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Longest-path DP from ``root`` straight over an acyclic node graph.

    ``waves`` must be topological waves of the whole graph (from
    :func:`peel_topological`); the condensation is the identity there,
    so the DP pulls over predecessor adjacency wave-by-wave: one ragged
    gather plus segmented ``reduceat`` reductions per wave.  Semantics
    mirror the dict baseline: a node's value is its metric plus the max
    over *reached* predecessors' values, and it joins the reached set
    only when that candidate beats the ``-1`` unreached sentinel
    (strictly) — so negative metrics drop nodes exactly like the
    baseline does.  Arithmetic runs in the metric array's dtype
    (``int64``/``float64``); callers needing exact arbitrary-magnitude
    Python-int sums must use the flat-list :func:`longest_path_dp`.
    """
    n = pred_indptr.size - 1
    pred_counts = np.diff(pred_indptr)
    best = np.full(n, -1, dtype=metric.dtype)
    best[root] = metric[root]
    reached = np.zeros(n, dtype=bool)
    reached[root] = True
    sentinel = (
        np.iinfo(metric.dtype).min
        if metric.dtype.kind in "iu"
        else -np.inf
    )
    for wave in waves:
        # nodes without predecessors keep their seed value (root) or
        # stay unreached; they must be dropped so reduceat sees no
        # empty segments
        pulling = wave[pred_counts[wave] > 0]
        if pulling.size == 0:
            continue
        preds = _gather(pred_indptr, pred_indices, pulling)
        starts = np.zeros(pulling.size, dtype=np.int64)
        np.cumsum(pred_counts[pulling][:-1], out=starts[1:], dtype=np.int64)
        pred_reached = reached[preds]
        has_reached_pred = np.logical_or.reduceat(pred_reached, starts)
        if not has_reached_pred.any():
            continue
        seg_best = np.maximum.reduceat(
            np.where(pred_reached, best[preds], sentinel), starts
        )
        pulled = pulling[has_reached_pred]
        candidates = metric[pulled] + seg_best[has_reached_pred]
        assigned = candidates > -1
        updated = pulled[assigned]
        best[updated] = candidates[assigned]
        reached[updated] = True
    return best, reached


def tarjan_scc(
    indptr: np.ndarray,
    indices: np.ndarray,
    seeds: Iterable[int],
    n: int,
) -> tuple[np.ndarray, list[list[int]]]:
    """Iterative Tarjan SCC over CSR adjacency, restricted to the
    subgraph reachable from ``seeds``.

    All DFS state lives in flat arrays indexed by node id — ``index``,
    ``low``, ``on_stack`` and the emitted ``comp_of`` labels — with an
    explicit edge-pointer work stack; no per-node dicts or materialised
    children lists.  Returns ``(comp_of, comp_members)`` where
    ``comp_of[nid]`` is the component id (``-1`` for unvisited ids) and
    ``comp_members[cid]`` lists member node ids.  Component ids are
    assigned in emission order (reverse-topological for the visited
    subgraph), but callers must not rely on that — use
    :func:`topo_order`.
    """
    # flat per-id state; plain lists index faster than numpy scalars in
    # the unavoidably sequential DFS loop
    indptr_l: Sequence[int] = indptr.tolist()
    indices_l: Sequence[int] = indices.tolist()
    index = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    comp_of = [-1] * n
    scc_stack: list[int] = []
    comp_members: list[list[int]] = []
    counter = 0
    # DFS work stack as two parallel flat lists: node, next edge offset
    work_node: list[int] = []
    work_edge: list[int] = []

    for seed in seeds:
        if index[seed] != -1:
            continue
        index[seed] = low[seed] = counter
        counter += 1
        scc_stack.append(seed)
        on_stack[seed] = 1
        work_node.append(seed)
        work_edge.append(indptr_l[seed])
        while work_node:
            node = work_node[-1]
            edge = work_edge[-1]
            if edge < indptr_l[node + 1]:
                work_edge[-1] = edge + 1
                child = indices_l[edge]
                child_index = index[child]
                if child_index == -1:
                    index[child] = low[child] = counter
                    counter += 1
                    scc_stack.append(child)
                    on_stack[child] = 1
                    work_node.append(child)
                    work_edge.append(indptr_l[child])
                elif on_stack[child] and child_index < low[node]:
                    low[node] = child_index
            else:
                work_node.pop()
                work_edge.pop()
                lowlink = low[node]
                if work_node:
                    parent = work_node[-1]
                    if lowlink < low[parent]:
                        low[parent] = lowlink
                if lowlink == index[node]:
                    cid = len(comp_members)
                    members: list[int] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack[member] = 0
                        comp_of[member] = cid
                        members.append(member)
                        if member == node:
                            break
                    comp_members.append(members)
    return np.asarray(comp_of, dtype=INDEX_DTYPE), comp_members


def condensation_edges(
    comp_of: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    ncomp: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Unique cross-component edges of the condensation DAG, as CSR.

    Vectorised id remap: every graph edge is relabelled through
    ``comp_of``, intra-component and unvisited-endpoint edges are masked
    out, and the survivors are deduplicated via ``np.unique`` on packed
    ``(src << 32) | dst`` 64-bit keys.
    """
    counts = np.diff(indptr)
    comp_src = np.repeat(comp_of, counts).astype(np.int64)
    comp_dst = comp_of[indices].astype(np.int64)
    keep = (comp_src >= 0) & (comp_dst >= 0) & (comp_src != comp_dst)
    packed = np.unique((comp_src[keep] << 32) | comp_dst[keep])
    src = (packed >> 32).astype(np.int64)
    dst = (packed & 0xFFFFFFFF).astype(INDEX_DTYPE)
    cindptr = np.zeros(ncomp + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(src, minlength=ncomp), out=cindptr[1:], dtype=np.int64)
    return cindptr, dst


def topo_order(
    cindptr: np.ndarray, cindices: np.ndarray, ncomp: int
) -> list[int]:
    """Kahn topological order (callers first) over condensation CSR.

    Indegrees are computed in one vectorised ``bincount``; the ready
    stack and the relaxation loop run over flat lists.
    """
    indegree = np.bincount(cindices, minlength=ncomp).tolist()
    cindptr_l = cindptr.tolist()
    cindices_l = cindices.tolist()
    ready = [cid for cid in range(ncomp) if indegree[cid] == 0]
    order: list[int] = []
    while ready:
        cid = ready.pop()
        order.append(cid)
        for offset in range(cindptr_l[cid], cindptr_l[cid + 1]):
            target = cindices_l[offset]
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
    return order


def longest_path_dp(
    cindptr: np.ndarray,
    cindices: np.ndarray,
    order: Sequence[int],
    comp_metric: Sequence,
    root_comp: int,
) -> tuple[list, bytearray]:
    """Longest-path DP from ``root_comp`` over the condensation DAG.

    Returns ``(best, reached)``: per-component best path sum (flat list,
    Python numbers — exact for arbitrary metric magnitudes) and the
    reachability-from-root byte mask.  Relaxation runs in topological
    order over flat lists: the condensation is typically tiny relative
    to the graph, where per-component numpy slicing costs more than it
    vectorises, and the ``-1`` unreached sentinel semantics of the dict
    baseline carry over exactly (a candidate replaces the incumbent only
    when strictly greater).
    """
    ncomp = len(comp_metric)
    cindptr_l = cindptr.tolist()
    cindices_l = cindices.tolist()
    metric_l = comp_metric.tolist() if hasattr(comp_metric, "tolist") else list(
        comp_metric
    )
    best: list = [-1] * ncomp
    reached = bytearray(ncomp)
    best[root_comp] = metric_l[root_comp]
    reached[root_comp] = 1
    for cid in order:
        if not reached[cid]:
            continue
        base = best[cid]
        for offset in range(cindptr_l[cid], cindptr_l[cid + 1]):
            target = cindices_l[offset]
            candidate = base + metric_l[target]
            if candidate > best[target]:
                best[target] = candidate
                reached[target] = 1
    return best, reached


class CsrSnapshot:
    """Immutable CSR view of one :class:`CallGraph` version.

    Built by :meth:`CallGraph.csr`; every accessor is valid only while
    the graph's ``version`` equals :attr:`version` (the graph-side cache
    guarantees callers never see a stale snapshot, and
    :meth:`meta_column` re-checks defensively).
    """

    __slots__ = (
        "version",
        "n",
        "succ_indptr",
        "succ_indices",
        "pred_indptr",
        "pred_indices",
        "alive",
        "live_ids",
        "_graph",
        "_meta_columns",
        "_waves",
    )

    def __init__(self, graph: "CallGraph"):
        self._graph = graph
        self.version = graph.version
        n = graph.id_bound
        self.n = n
        succ = graph._succ
        counts = np.fromiter((len(s) for s in succ), dtype=np.int64, count=n)
        edge_total = int(counts.sum())
        targets = np.fromiter(
            (t for s in succ for t in s), dtype=np.int64, count=edge_total
        )
        sources = np.repeat(np.arange(n, dtype=np.int64), counts)
        self.succ_indptr, self.succ_indices = edges_to_csr(n, sources, targets)
        self.pred_indptr, self.pred_indices = edges_to_csr(n, targets, sources)
        alive = np.zeros(n, dtype=bool)
        live = np.fromiter(graph._ids.values(), dtype=np.int64, count=len(graph))
        alive[live] = True
        self.alive = alive
        self.live_ids = np.flatnonzero(alive).astype(INDEX_DTYPE)
        self._meta_columns: dict[str, np.ndarray] = {}
        self._waves: list[np.ndarray] | None | bool = False

    @property
    def graph(self) -> "CallGraph":
        """The snapshotted graph, checked to still be at this version.

        The evaluate phase of the compile/evaluate split runs against a
        supplied snapshot (:func:`repro.core.pipeline.evaluate_compiled`)
        and must never silently read a graph that moved on — a stale
        snapshot raises instead of aliasing the live structure.
        """
        if self._graph.version != self.version:
            raise RuntimeError(
                "stale CsrSnapshot: the graph mutated since csr() was taken"
            )
        return self._graph

    @property
    def nbytes(self) -> int:
        """Resident bytes of the snapshot's numpy arrays.

        Used by the service-layer :class:`~repro.service.GraphStore` for
        byte-budgeted LRU eviction.  Includes lazily-built caches (meta
        columns, topological waves) at their current size.
        """
        total = (
            self.succ_indptr.nbytes
            + self.succ_indices.nbytes
            + self.pred_indptr.nbytes
            + self.pred_indices.nbytes
            + self.alive.nbytes
            + self.live_ids.nbytes
        )
        total += sum(column.nbytes for column in self._meta_columns.values())
        if isinstance(self._waves, list):
            total += sum(wave.nbytes for wave in self._waves)
        return total

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.succ_indptr)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.pred_indptr)

    def topological_waves(self) -> list[np.ndarray] | None:
        """Cached global Kahn waves; ``None`` when the graph has a cycle.

        A root-independent structural property of the snapshot (like
        :meth:`meta_column`): computed on first use, then shared by every
        condensation/aggregation over this graph version.
        """
        if self._waves is False:
            self._waves = peel_topological(
                self.succ_indptr, self.succ_indices, self.n
            )
        return self._waves

    def meta_column(self, attr: str, dtype=np.int64) -> np.ndarray:
        """Dense numpy column of one numeric/boolean ``NodeMeta`` attribute.

        Tombstone slots hold 0.  Cached on the snapshot for its lifetime
        (the underlying graph column cannot change while the versions
        match).
        """
        cached = self._meta_columns.get(attr)
        if cached is not None:
            return cached
        if self._graph.version != self.version:
            raise RuntimeError(
                "stale CsrSnapshot: the graph mutated since csr() was taken"
            )
        raw = self._graph.meta_column(attr)
        column = np.fromiter(
            (value or 0 for value in raw), dtype=dtype, count=self.n
        )
        self._meta_columns[attr] = column
        return column
