"""Per-translation-unit local call-graph construction (MetaCG step 1).

A local graph sees only the functions *defined* in its TU plus the
names it references: callees from other TUs appear as declaration-only
nodes, virtual call sites cannot be resolved (the class hierarchy is
global), and function-pointer sites are recorded for later resolution.
Whole-program knowledge is reconstructed in :mod:`repro.cg.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cg.graph import CallGraph, EdgeReason, NodeMeta
from repro.program.ir import CallKind, FunctionDef, TranslationUnit


@dataclass
class UnresolvedVirtualCall:
    """A virtual call site awaiting whole-program override resolution."""

    caller: str
    static_target: str


@dataclass
class UnresolvedPointerCall:
    """A function-pointer call site awaiting resolution."""

    caller: str
    pointer_id: str


@dataclass
class LocalCallGraph:
    """One TU's call graph plus its unresolved call sites."""

    tu_name: str
    graph: CallGraph
    virtual_calls: list[UnresolvedVirtualCall] = field(default_factory=list)
    pointer_calls: list[UnresolvedPointerCall] = field(default_factory=list)


def meta_of(fn: FunctionDef, tu_name: str) -> NodeMeta:
    """Translate IR function metadata into MetaCG node annotations."""
    return NodeMeta(
        statements=fn.statements,
        flops=fn.flops,
        loop_depth=fn.loop_depth,
        inline_marked=fn.inline_marked,
        in_system_header=fn.in_system_header,
        is_virtual=fn.is_virtual,
        is_mpi=fn.is_mpi,
        is_static_initializer=fn.is_static_initializer,
        has_body=True,
        source_path=fn.source_path,
        tu=tu_name,
    )


def build_local_cg(tu: TranslationUnit) -> LocalCallGraph:
    """Construct the local call graph of one translation unit."""
    graph = CallGraph()
    local = LocalCallGraph(tu_name=tu.name, graph=graph)
    for fn in tu:
        graph.add_node(fn.name, meta_of(fn, tu.name))
    for fn in tu:
        for cs in fn.call_sites:
            if cs.kind is CallKind.DIRECT:
                assert cs.callee is not None
                graph.add_node(cs.callee)  # declaration-only if foreign
                graph.add_edge(fn.name, cs.callee, EdgeReason.DIRECT)
            elif cs.kind is CallKind.VIRTUAL:
                assert cs.callee is not None
                graph.add_node(cs.callee)
                # the static target is a valid callee; overriders are
                # added during whole-program merge
                graph.add_edge(fn.name, cs.callee, EdgeReason.VIRTUAL)
                local.virtual_calls.append(
                    UnresolvedVirtualCall(fn.name, cs.callee)
                )
            else:
                assert cs.pointer_id is not None
                local.pointer_calls.append(
                    UnresolvedPointerCall(fn.name, cs.pointer_id)
                )
    return local
