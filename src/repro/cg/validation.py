"""Profile-based call-graph validation (paper §III-A).

"For cases where this is unsuccessful, a utility is available that
validates the static call-graph via a Score-P-generated profile and
inserts missing edges automatically."  Given observed caller→callee
pairs from a measurement run, any pair missing from the static graph is
inserted with reason ``PROFILE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cg.graph import CallGraph, EdgeReason


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    observed_pairs: int = 0
    already_present: int = 0
    inserted: list[tuple[str, str]] = field(default_factory=list)
    #: Observed callees that were not even nodes (fully invisible to
    #: static analysis, e.g. dlopen'ed plugins).
    new_nodes: list[str] = field(default_factory=list)


def validate_with_profile(
    graph: CallGraph, observed_edges: Iterable[tuple[str, str]]
) -> ValidationReport:
    """Insert profile-observed edges missing from the static graph."""
    report = ValidationReport()
    for caller, callee in observed_edges:
        report.observed_pairs += 1
        if graph.has_edge(caller, callee):
            report.already_present += 1
            continue
        for name in (caller, callee):
            if name not in graph:
                report.new_nodes.append(name)
        graph.add_edge(caller, callee, EdgeReason.PROFILE)
        report.inserted.append((caller, callee))
    return report
