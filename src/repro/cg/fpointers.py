"""Static function-pointer resolution (paper §III-A).

"MetaCG additionally tries to statically resolve function pointer
calls."  Pointer identities whose target set is statically visible
contribute POINTER edges; the rest stay unresolved and must be filled
in by profile validation (:mod:`repro.cg.validation`).
"""

from __future__ import annotations

from typing import Iterable

from repro.cg.graph import CallGraph, EdgeReason
from repro.cg.local import UnresolvedPointerCall
from repro.program.ir import SourceProgram


def resolve_static_pointers(
    graph: CallGraph,
    pointer_calls: Iterable[UnresolvedPointerCall],
    program: SourceProgram,
) -> tuple[int, list[UnresolvedPointerCall]]:
    """Insert edges for statically resolvable pointers.

    Returns ``(edges_inserted, still_unresolved)``.
    """
    inserted = 0
    unresolved: list[UnresolvedPointerCall] = []
    for pc in pointer_calls:
        targets = program.pointer_targets.get(pc.pointer_id)
        if targets is None or not targets.static_resolvable:
            unresolved.append(pc)
            continue
        for target in targets.targets:
            if not graph.has_edge(pc.caller, target):
                inserted += 1
            graph.add_edge(pc.caller, target, EdgeReason.POINTER)
    return inserted, unresolved
