"""MetaCG-style JSON (de)serialisation of call graphs.

The on-disk layout loosely follows MetaCG's format: a top-level
``_MetaCG`` header and one entry per function carrying callees/callers
and a ``meta`` blob.  Round-tripping preserves nodes, edges, reasons and
metadata exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cg.graph import CallGraph, EdgeReason, NodeMeta
from repro.errors import CallGraphError

FORMAT_VERSION = "2.0-repro"


def to_dict(graph: CallGraph) -> dict:
    nodes: dict[str, dict] = {}
    for node in graph.nodes():
        meta = node.meta
        nodes[node.name] = {
            "callees": {
                callee: graph.edge_reason(node.name, callee).value  # type: ignore[union-attr]
                for callee in sorted(graph.callees_of(node.name))
            },
            "meta": {
                "numStatements": meta.statements,
                "numFlops": meta.flops,
                "loopDepth": meta.loop_depth,
                "isInlineMarked": meta.inline_marked,
                "isInSystemHeader": meta.in_system_header,
                "isVirtual": meta.is_virtual,
                "isMpi": meta.is_mpi,
                "isStaticInitializer": meta.is_static_initializer,
                "hasBody": meta.has_body,
                "sourcePath": meta.source_path,
                "tu": meta.tu,
            },
        }
    return {"_MetaCG": {"version": FORMAT_VERSION}, "_CG": nodes}


def from_dict(data: dict) -> CallGraph:
    header = data.get("_MetaCG")
    if not header:
        raise CallGraphError("missing _MetaCG header")
    graph = CallGraph()
    cg = data.get("_CG", {})
    for name, entry in cg.items():
        m = entry.get("meta", {})
        graph.add_node(
            name,
            NodeMeta(
                statements=m.get("numStatements", 0),
                flops=m.get("numFlops", 0),
                loop_depth=m.get("loopDepth", 0),
                inline_marked=m.get("isInlineMarked", False),
                in_system_header=m.get("isInSystemHeader", False),
                is_virtual=m.get("isVirtual", False),
                is_mpi=m.get("isMpi", False),
                is_static_initializer=m.get("isStaticInitializer", False),
                has_body=m.get("hasBody", False),
                source_path=m.get("sourcePath", ""),
                tu=m.get("tu", ""),
            ),
        )
    for name, entry in cg.items():
        for callee, reason in entry.get("callees", {}).items():
            graph.add_edge(name, callee, EdgeReason(reason))
    return graph


def save(graph: CallGraph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(to_dict(graph), indent=1, sort_keys=True))


def load(path: str | Path) -> CallGraph:
    return from_dict(json.loads(Path(path).read_text()))
