"""MetaCG substrate: whole-program call graphs for CaPI.

Two-step construction exactly as in the MetaCG workflow (paper Fig. 2):
per-TU local graphs (:mod:`local`), then a whole-program merge
(:mod:`merge`) that over-approximates virtual calls (:mod:`virtual`),
statically resolves function pointers (:mod:`fpointers`) and can be
patched up from a measurement profile (:mod:`validation`).
"""

from repro.cg.csr import CsrSnapshot
from repro.cg.graph import CallGraph, CGNode, Edge, EdgeReason, NodeMeta
from repro.cg.local import LocalCallGraph, build_local_cg
from repro.cg.merge import build_whole_program_cg, merge_local_graphs
from repro.cg.validation import ValidationReport, validate_with_profile
from repro.cg.analysis import (
    aggregate_statements,
    call_depths_from,
    call_path_between,
    on_call_path_from,
    on_call_path_to,
)

__all__ = [
    "CGNode",
    "CallGraph",
    "CsrSnapshot",
    "Edge",
    "EdgeReason",
    "LocalCallGraph",
    "NodeMeta",
    "ValidationReport",
    "aggregate_statements",
    "build_local_cg",
    "build_whole_program_cg",
    "call_depths_from",
    "call_path_between",
    "merge_local_graphs",
    "on_call_path_from",
    "on_call_path_to",
    "validate_with_profile",
]
