"""Call-graph analyses shared by selectors and the coarse pass.

All traversals are iterative (no recursion) and linear in nodes+edges so
they stay usable at the paper's 410k-node OpenFOAM scale.  The heavy
lifting runs over the graph's frozen CSR snapshot
(:meth:`~repro.cg.graph.CallGraph.csr`) with the flat-array kernels of
:mod:`repro.cg.csr` — array-frontier reachability, an iterative Tarjan
over flat state arrays, vectorised condensation edges and the
longest-path DP over flat best/indegree arrays.  The string-keyed
wrappers remain for callers that live at the name boundary.

The pre-CSR dict/set implementations are kept at the bottom of this
module (``_condense``, ``_condensation_edges``, ``_topo_order``,
``_aggregate_statement_ids_dicts``): the scale benchmark times the CSR
kernels against them, and the property tests use them as the reference
the kernels must agree with bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

import numpy as np

from repro.cg import csr as _csr
from repro.cg.graph import CallGraph


def on_call_path_to(graph: CallGraph, targets: Iterable[str]) -> set[str]:
    """Nodes on some call path from anywhere to a target.

    This is reverse reachability — CaPI's ``onCallPathTo`` semantics:
    the function itself, plus every (transitive) caller.
    """
    return graph.reaching(targets)


def on_call_path_from(graph: CallGraph, sources: Iterable[str]) -> set[str]:
    """Nodes reachable from the sources (``onCallPathFrom``)."""
    return graph.reachable_from(sources)


def call_path_between_ids(
    graph: CallGraph, source_ids: Iterable[int], target_ids: Iterable[int]
) -> set[int]:
    """Ids on some path source→…→target, as integer set intersection."""
    return graph.reachable_ids(source_ids) & graph.reaching_ids(target_ids)


def call_path_between(
    graph: CallGraph, sources: Iterable[str], targets: Iterable[str]
) -> set[str]:
    """Nodes on some path source→…→target (e.g. main→MPI op).

    The ``mpi_comm`` selector of the bundled ``mpi.capi`` module is
    exactly this with sources={main} and targets={MPI_*}.
    """
    ids = call_path_between_ids(
        graph, graph.names_to_ids(sources), graph.names_to_ids(targets)
    )
    return set(graph.ids_to_names(ids))


def call_depth_dense(graph: CallGraph, root_id: int) -> np.ndarray:
    """Shortest call depth from ``root_id`` as a dense per-id array.

    ``-1`` marks unreachable ids; selectors filter with vectorised
    comparisons instead of per-node dict lookups.

    Memoised on the snapshot under ``("depth", root_id)`` (with the
    root's reach mask alongside), so repeated depth filters over one
    graph version share the BFS — and a delta refresh carries the
    arrays over when the edit leaves the root's reachable set untouched.
    Treat the returned array as read-only.
    """
    snapshot = graph.csr()
    dense = snapshot.analyses.get(("depth", root_id))
    if dense is None:
        dense = _csr.bfs_depths(
            snapshot.succ_indptr, snapshot.succ_indices, root_id, snapshot.n
        )
        snapshot.analyses[("depth", root_id)] = dense
        snapshot.analyses.setdefault(("reach", root_id), dense >= 0)
    return dense


def reach_ids_frozen(graph: CallGraph, root_id: int) -> frozenset[int]:
    """Ids reachable from ``root_id``, memoised on the snapshot.

    The shared support set of every root-keyed analysis result — what
    the delta-aware cross-run cache records as a dependency so an edit
    inside the reachable region drops exactly the results it can affect.
    """
    snapshot = graph.csr()
    reachset = snapshot.analyses.get(("reachset", root_id))
    if reachset is None:
        mask = snapshot.analyses.get(("reach", root_id))
        if mask is None:
            mask = _csr.sweep(
                snapshot.succ_indptr,
                snapshot.succ_indices,
                (root_id,),
                snapshot.n,
            )
            snapshot.analyses[("reach", root_id)] = mask
        reachset = frozenset(np.flatnonzero(mask).tolist())
        snapshot.analyses[("reachset", root_id)] = reachset
    return reachset


def call_depth_ids_from(graph: CallGraph, root_id: int) -> dict[int, int]:
    """Shortest call depth from a root id (BFS; unreachable ids absent).

    Small graphs run the plain deque BFS (numpy per-wave dispatch costs
    more than it vectorises there); larger ones build the dense CSR
    depth array and convert.  Results are identical either way.
    """
    if graph.id_bound + graph.edge_count() < _csr.VECTOR_MIN_SIZE:
        depths = {root_id: 0}
        queue = deque([root_id])
        succ = graph.succ_ids
        while queue:
            nid = queue.popleft()
            base = depths[nid] + 1
            for callee in succ(nid):
                if callee not in depths:
                    depths[callee] = base
                    queue.append(callee)
        return depths
    dense = call_depth_dense(graph, root_id)
    reached = np.flatnonzero(dense >= 0)
    return dict(zip(reached.tolist(), dense[reached].tolist()))


def call_depths_from(graph: CallGraph, root: str) -> dict[str, int]:
    """Shortest call depth from ``root`` (BFS; unreachable nodes absent)."""
    root_id = graph.id_of(root)
    if root_id is None:
        return {}
    name_of = graph.name_of
    return {
        name_of(nid): d for nid, d in call_depth_ids_from(graph, root_id).items()
    }


def _aggregate_arrays(
    graph: CallGraph, root_id: int, metric: Callable[[int], int] | None
) -> tuple[np.ndarray, "np.ndarray | list"]:
    """Aggregation core: ``(node_ids, totals)`` over the CSR kernels.

    ``totals`` parallels ``node_ids``: a numpy array on the vectorised
    fast path, a list of exact Python numbers on the fallback.

    Fast path (the overwhelmingly common call-graph case): the
    snapshot's cached wave order proves the graph acyclic, so the
    condensation is the identity and the longest-path DP pulls over
    predecessor adjacency wave-by-wave, fully vectorised.  The fast
    path is taken only for the default ``statements`` metric — its
    nonnegative bounded values keep the ``int64`` wave DP exact;
    custom metric callables (arbitrary Python numbers) always go
    through the Python-int DP below.  Cyclic graphs also fall back:
    Tarjan over flat arrays, vectorised condensation-edge extraction,
    and the flat-list DP in Kahn topological order.
    """
    snapshot = graph.csr()
    indptr, indices = snapshot.succ_indptr, snapshot.succ_indices
    if metric is None:
        waves = snapshot.topological_waves()
        if waves is not None:
            best, reached = _csr.dag_longest_path(
                snapshot.pred_indptr,
                snapshot.pred_indices,
                waves,
                snapshot.meta_column("statements"),
                root_id,
            )
            node_ids = np.flatnonzero(reached)
            return node_ids, best[node_ids]
    comp_of, comp_members = _csr.scc_condense(
        indptr,
        indices,
        snapshot.pred_indptr,
        snapshot.pred_indices,
        (root_id,),
        snapshot.n,
    )
    ncomp = len(comp_members)
    if metric is None:
        statements = snapshot.meta_column("statements")
        in_comp = comp_of >= 0
        comp_metric = np.zeros(ncomp, dtype=np.int64)
        np.add.at(comp_metric, comp_of[in_comp], statements[in_comp])
    else:
        # plain Python sums: custom metrics keep exact arbitrary-
        # magnitude arithmetic through the flat-list DP
        comp_metric = [
            sum(metric(member) for member in members) for members in comp_members
        ]
    cindptr, cindices = _csr.condensation_edges(comp_of, indptr, indices, ncomp)
    order = _csr.topo_order(cindptr, cindices, ncomp)
    best, reached = _csr.longest_path_dp(
        cindptr, cindices, order, comp_metric, int(comp_of[root_id])
    )
    visited_nodes = np.flatnonzero(comp_of >= 0)
    node_comps = comp_of[visited_nodes]
    keep = np.frombuffer(reached, dtype=np.uint8)[node_comps].astype(bool)
    node_ids = visited_nodes[keep]
    totals = [best[comp] for comp in node_comps[keep].tolist()]
    return node_ids, totals


def aggregate_statement_dense(graph: CallGraph, root_id: int) -> np.ndarray:
    """Aggregated statement totals as a dense per-id array (0 default).

    The array equivalent of ``aggregate_statement_ids(...).get(nid, 0)``
    — what the ``statementAggregation`` selector consumes for its
    vectorised threshold filter.

    Memoised on the snapshot under ``("agg", root_id)`` (with the root's
    reach mask alongside); a delta refresh carries the array over when
    the edit cannot reach the root's aggregation region.  Treat the
    returned array as read-only.
    """
    snapshot = graph.csr()
    dense = snapshot.analyses.get(("agg", root_id))
    if dense is None:
        node_ids, totals = _aggregate_arrays(graph, root_id, None)
        dense = np.zeros(snapshot.n, dtype=np.int64)
        dense[node_ids] = totals
        snapshot.analyses[("agg", root_id)] = dense
        if ("reach", root_id) not in snapshot.analyses:
            mask = np.zeros(snapshot.n, dtype=bool)
            mask[node_ids] = True
            snapshot.analyses[("reach", root_id)] = mask
    return dense


def aggregate_statement_ids(
    graph: CallGraph, root_id: int, *, metric: Callable[[int], int] | None = None
) -> dict[int, int]:
    """Statement aggregation along call chains, over interned ids.

    For each node, the maximum over all call paths from the root of the
    summed statement counts along the path.  Cycles contribute each
    member once (the aggregation is computed over the DAG of strongly
    connected components).
    """
    node_ids, totals = _aggregate_arrays(graph, root_id, metric)
    if isinstance(totals, np.ndarray):
        totals = totals.tolist()
    return dict(zip(node_ids.tolist(), totals))


def aggregate_statements(
    graph: CallGraph, root: str, *, metric: Callable[[str], int] | None = None
) -> dict[str, int]:
    """Statement aggregation along call chains (Iwainsky & Bischof [16])."""
    root_id = graph.id_of(root)
    if root_id is None:
        return {}
    id_metric = None
    if metric is not None:
        name_metric = metric
        id_metric = lambda nid: name_metric(graph.name_of(nid))  # noqa: E731
    name_of = graph.name_of
    return {
        name_of(nid): total
        for nid, total in aggregate_statement_ids(
            graph, root_id, metric=id_metric
        ).items()
    }


def single_caller_ids(graph: CallGraph, within: set[int]) -> set[int]:
    """Ids in ``within`` whose only caller *within the set* is unique."""
    out = set()
    pred = graph.pred_ids
    for nid in within:
        count = 0
        for p in pred(nid):
            if p in within:
                count += 1
                if count > 1:
                    break
        if count == 1:
            out.add(nid)
    return out


def single_caller_nodes(graph: CallGraph, within: set[str]) -> set[str]:
    """Nodes in ``within`` whose only caller *within the set* is unique.

    Helper for the coarse selector: a callee with exactly one selected
    caller is a pass-through candidate.
    """
    ids = single_caller_ids(graph, graph.names_to_ids(within))
    return set(graph.ids_to_names(ids))


# -- dict-based reference implementations ------------------------------------------
#
# The pre-CSR kernels, kept verbatim: the scale benchmark's ``analysis``
# section times the CSR kernels against them (with asserted bit-for-bit
# equal results), and the kernel property tests use them as the
# reference implementation.


def _dict_reachable_ids(graph: CallGraph, seeds: Iterable[int]) -> set[int]:
    """The pre-CSR sweep: bytearray visited array over id-set adjacency."""
    visited = bytearray(graph.id_bound)
    stack: list[int] = []
    for nid in seeds:
        if not visited[nid]:
            visited[nid] = 1
            stack.append(nid)
    out = list(stack)
    succ = graph.succ_ids
    while stack:
        nid = stack.pop()
        for nxt in succ(nid):
            if not visited[nxt]:
                visited[nxt] = 1
                stack.append(nxt)
                out.append(nxt)
    return set(out)


def _condense(
    graph: CallGraph, root_id: int
) -> tuple[dict[int, int], list[list[int]]]:
    """Tarjan SCC over the subgraph reachable from ``root_id`` (iterative).

    Returns ``(comp_of, comp_members)`` where ``comp_of`` maps a node id
    to its component id and ``comp_members[cid]`` lists member node ids.
    """
    reachable = _dict_reachable_ids(graph, [root_id])
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    comp_of: dict[int, int] = {}
    comp_members: list[list[int]] = []
    counter = 0

    succ = graph.succ_ids
    call_stack: list[tuple[int, list[int], int]] = []
    for start in reachable:
        if start in index:
            continue
        index[start] = low[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        call_stack.append((start, [c for c in succ(start) if c in reachable], 0))
        while call_stack:
            node, children, child_pos = call_stack[-1]
            advanced = False
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if child not in index:
                    call_stack[-1] = (node, children, child_pos)
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    call_stack.append(
                        (child, [c for c in succ(child) if c in reachable], 0)
                    )
                    advanced = True
                    break
                if child in on_stack and index[child] < low[node]:
                    low[node] = index[child]
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                members = []
                cid = len(comp_members)
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    comp_of[member] = cid
                    if member == node:
                        break
                comp_members.append(members)
    return comp_of, comp_members


def _condensation_edges(
    graph: CallGraph, comp_of: dict[int, int], comp_members: list[list[int]]
) -> list[set[int]]:
    """Cross-component successor sets of the condensation DAG."""
    comp_succ: list[set[int]] = [set() for _ in comp_members]
    succ = graph.succ_ids
    get_comp = comp_of.get
    for cid, members in enumerate(comp_members):
        targets = comp_succ[cid]
        for member in members:
            for callee in succ(member):
                tgt = get_comp(callee)
                if tgt is not None and tgt != cid:
                    targets.add(tgt)
    return comp_succ


def _topo_order(comp_succ: list[set[int]]) -> list[int]:
    """Explicit topological order of the condensation (callers first).

    Kahn's algorithm over the cross-component edges.  Unlike relying on
    Tarjan's emission order (reverse-topological by construction, but an
    implementation detail of the traversal), this is order-correct for
    any SCC labelling.
    """
    indegree = [0] * len(comp_succ)
    for targets in comp_succ:
        for tgt in targets:
            indegree[tgt] += 1
    ready = [cid for cid, deg in enumerate(indegree) if deg == 0]
    order: list[int] = []
    while ready:
        cid = ready.pop()
        order.append(cid)
        for tgt in comp_succ[cid]:
            indegree[tgt] -= 1
            if indegree[tgt] == 0:
                ready.append(tgt)
    return order


def _aggregate_statement_ids_dicts(
    graph: CallGraph, root_id: int, *, metric: Callable[[int], int] | None = None
) -> dict[int, int]:
    """The pre-CSR dict-based statement aggregation (reference/baseline)."""
    metric = metric or (lambda nid: graph.meta_of(nid).statements)
    comp_of, comp_members = _condense(graph, root_id)
    comp_metric = [sum(metric(m) for m in members) for members in comp_members]
    comp_succ = _condensation_edges(graph, comp_of, comp_members)
    order = _topo_order(comp_succ)
    best: dict[int, int] = {}
    root_comp = comp_of[root_id]
    best[root_comp] = comp_metric[root_comp]
    # longest-path DP over the condensation in topological order
    # (callers relaxed before their callees)
    for cid in order:
        if cid not in best:
            continue
        base = best[cid]
        for tgt in comp_succ[cid]:
            cand = base + comp_metric[tgt]
            if cand > best.get(tgt, -1):
                best[tgt] = cand
    return {
        member: best[cid]
        for cid, members in enumerate(comp_members)
        if cid in best
        for member in members
    }
