"""Call-graph analyses shared by selectors and the coarse pass.

All traversals are iterative (no recursion) and linear in nodes+edges so
they stay usable at the paper's 410k-node OpenFOAM scale.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.cg.graph import CallGraph


def on_call_path_to(graph: CallGraph, targets: Iterable[str]) -> set[str]:
    """Nodes on some call path from anywhere to a target.

    This is reverse reachability — CaPI's ``onCallPathTo`` semantics:
    the function itself, plus every (transitive) caller.
    """
    return graph.reaching(targets)


def on_call_path_from(graph: CallGraph, sources: Iterable[str]) -> set[str]:
    """Nodes reachable from the sources (``onCallPathFrom``)."""
    return graph.reachable_from(sources)


def call_path_between(
    graph: CallGraph, sources: Iterable[str], targets: Iterable[str]
) -> set[str]:
    """Nodes on some path source→…→target (e.g. main→MPI op).

    The ``mpi_comm`` selector of the bundled ``mpi.capi`` module is
    exactly this with sources={main} and targets={MPI_*}.
    """
    return graph.reachable_from(sources) & graph.reaching(targets)


def call_depths_from(graph: CallGraph, root: str) -> dict[str, int]:
    """Shortest call depth from ``root`` (BFS; unreachable nodes absent)."""
    if root not in graph:
        return {}
    depths = {root: 0}
    queue = deque([root])
    while queue:
        name = queue.popleft()
        for callee in graph.callees_of(name):
            if callee not in depths:
                depths[callee] = depths[name] + 1
                queue.append(callee)
    return depths


def aggregate_statements(
    graph: CallGraph, root: str, *, metric: Callable[[str], int] | None = None
) -> dict[str, int]:
    """Statement aggregation along call chains (Iwainsky & Bischof [16]).

    For each node, the maximum over all call paths from ``root`` of the
    summed statement counts along the path.  Cycles contribute each
    member once (the aggregation is computed over the DAG of strongly
    connected components).
    """
    if root not in graph:
        return {}
    metric = metric or (lambda n: graph.node(n).meta.statements)
    comp_of, comp_members = _condense(graph, root)
    comp_metric = {
        cid: sum(metric(m) for m in members)
        for cid, members in comp_members.items()
    }
    # longest-path DP over the condensation in reverse topological order
    order = _topo_order(comp_of, comp_members, graph)
    best: dict[int, int] = {}
    root_comp = comp_of[root]
    best[root_comp] = comp_metric[root_comp]
    for cid in order:
        if cid not in best:
            continue
        for member in comp_members[cid]:
            for callee in graph.callees_of(member):
                tgt = comp_of.get(callee)
                if tgt is None or tgt == cid:
                    continue
                cand = best[cid] + comp_metric[tgt]
                if cand > best.get(tgt, -1):
                    best[tgt] = cand
    return {
        member: best[cid]
        for cid, members in comp_members.items()
        if cid in best
        for member in members
    }


def single_caller_nodes(graph: CallGraph, within: set[str]) -> set[str]:
    """Nodes in ``within`` whose only caller *within the set* is unique.

    Helper for the coarse selector: a callee with exactly one selected
    caller is a pass-through candidate.
    """
    out = set()
    for name in within:
        callers = graph.callers_of(name) & within
        if len(callers) == 1:
            out.add(name)
    return out


# -- internals -------------------------------------------------------------------


def _condense(graph: CallGraph, root: str) -> tuple[dict[str, int], dict[int, list[str]]]:
    """Tarjan SCC over the subgraph reachable from ``root`` (iterative)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    comp_of: dict[str, int] = {}
    comp_members: dict[int, list[str]] = {}
    counter = 0
    comp_id = 0

    call_stack: list[tuple[str, Iterable[str]]] = []
    reachable = graph.reachable_from([root])
    for start in sorted(reachable):
        if start in index:
            continue
        call_stack.append((start, iter(sorted(graph.callees_of(start) & reachable))))
        index[start] = low[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while call_stack:
            node, children = call_stack[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    call_stack.append(
                        (child, iter(sorted(graph.callees_of(child) & reachable)))
                    )
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                members = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    comp_of[member] = comp_id
                    if member == node:
                        break
                comp_members[comp_id] = members
                comp_id += 1
    return comp_of, comp_members


def _topo_order(
    comp_of: dict[str, int],
    comp_members: dict[int, list[str]],
    graph: CallGraph,
) -> list[int]:
    """Topological order of the condensation (callers before callees).

    Tarjan emits SCCs in reverse topological order of the condensation,
    so iterating component ids from high to low visits callers first.
    """
    return sorted(comp_members, reverse=True)
