"""Mutation journal for call graphs: typed delta entries and the bounded log.

The paper's workload is not one static graph but a stream of small edits
(a new build, one changed TU, a profile-validated edge).  Consumers that
cache derived state against a graph *version* — CSR snapshots, cross-run
selector caches, warm service entries — used to invalidate wholesale on
any bump.  The journal makes invalidation proportional to the edit:
every version bump appends exactly one :class:`DeltaEntry`, so a
consumer holding version ``v`` can ask the graph "what changed since
``v``?" (:meth:`repro.cg.graph.CallGraph.delta_since`) and receive a
:class:`GraphDelta` summarising the touched ids — or ``None`` when the
bounded log has truncated past ``v``, the signal to fall back to a full
rebuild.

The log is intentionally small (:data:`DELTA_LOG_MAX` entries): it only
needs to cover the gap between two accesses of a warm consumer, and a
gap wider than the log means the graph changed so much that incremental
repair would cost more than rebuilding anyway.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from itertools import islice

#: default bound on journal entries kept; one entry per version bump
DELTA_LOG_MAX = 4096

_EMPTY: frozenset[int] = frozenset()


class DeltaKind(enum.Enum):
    """What one version bump did to the graph."""

    NODE_ADDED = "node_added"
    EDGE_ADDED = "edge_added"
    REASON_UPGRADED = "reason_upgraded"
    META_MERGED = "meta_merged"
    NODE_REMOVED = "node_removed"


@dataclass(frozen=True)
class DeltaEntry:
    """One journal record; exactly one per version bump.

    ``node`` is the subject id (the added/removed/merged node, or the
    edge caller); ``other`` is the edge callee for edge kinds.  Node
    removal additionally records the neighbour ids the node had at
    removal time (``preds``/``succs``) — the live graph no longer holds
    those edges, but an incremental CSR refresh must know which rows to
    patch.
    """

    kind: DeltaKind
    node: int
    other: int = -1
    preds: tuple[int, ...] = ()
    succs: tuple[int, ...] = ()


@dataclass(frozen=True)
class GraphDelta:
    """Aggregate of every journal entry between two versions.

    ``struct_touched`` is the union of ids whose adjacency or edge
    metadata changed (edge endpoints, upgraded-reason endpoints, removed
    nodes and their recorded neighbours, added nodes);
    ``succ_rows``/``pred_rows`` name exactly the CSR rows an incremental
    refresh must rewrite.  An empty delta (``base_version == version``)
    is valid and touches nothing.
    """

    base_version: int
    version: int
    added: frozenset[int] = _EMPTY
    removed: frozenset[int] = _EMPTY
    meta_touched: frozenset[int] = _EMPTY
    struct_touched: frozenset[int] = _EMPTY
    succ_rows: frozenset[int] = _EMPTY
    pred_rows: frozenset[int] = _EMPTY

    @property
    def universe_changed(self) -> bool:
        """Whether the live id set itself changed (adds or removals)."""
        return bool(self.added or self.removed)

    @property
    def row_count(self) -> int:
        """Number of CSR rows a refresh must rewrite (both directions)."""
        return len(self.succ_rows) + len(self.pred_rows)


@dataclass
class DeltaLog:
    """Bounded journal: one entry per version bump, oldest dropped first.

    Invariant: the covered version window is
    ``(base_version, base_version + len(entries)]`` — appending an entry
    accompanies a version bump, and dropping the oldest entry advances
    ``base_version`` so truncation is always observable.
    """

    max_entries: int = DELTA_LOG_MAX
    #: version at the start of the covered window (entries describe the
    #: bumps base_version+1 .. base_version+len)
    base_version: int = 0
    _entries: deque = field(default_factory=deque)

    def record(self, entry: DeltaEntry) -> None:
        self._entries.append(entry)
        while len(self._entries) > self.max_entries:
            self._entries.popleft()
            self.base_version += 1

    def __len__(self) -> int:
        return len(self._entries)

    def entries_since(self, version: int, current: int) -> list[DeltaEntry] | None:
        """Entries describing bumps after ``version``, or ``None``.

        ``None`` means the log cannot answer — ``version`` predates the
        bounded window (truncated) or does not belong to this graph's
        lineage — and the caller must fall back to a full rebuild.
        """
        if version < self.base_version or version > current:
            return None
        return list(islice(self._entries, version - self.base_version, None))


def summarize(
    entries: list[DeltaEntry], base_version: int, version: int
) -> GraphDelta:
    """Fold journal entries into one :class:`GraphDelta`."""
    added: set[int] = set()
    removed: set[int] = set()
    meta: set[int] = set()
    struct: set[int] = set()
    succ_rows: set[int] = set()
    pred_rows: set[int] = set()
    for entry in entries:
        kind = entry.kind
        if kind is DeltaKind.NODE_ADDED:
            added.add(entry.node)
            struct.add(entry.node)
            succ_rows.add(entry.node)
            pred_rows.add(entry.node)
        elif kind is DeltaKind.EDGE_ADDED:
            struct.add(entry.node)
            struct.add(entry.other)
            succ_rows.add(entry.node)
            pred_rows.add(entry.other)
        elif kind is DeltaKind.REASON_UPGRADED:
            # the CSR arrays are reason-blind, but reasons are observable
            # metadata: cached results must treat both endpoints as dirty
            struct.add(entry.node)
            struct.add(entry.other)
        elif kind is DeltaKind.META_MERGED:
            meta.add(entry.node)
        elif kind is DeltaKind.NODE_REMOVED:
            removed.add(entry.node)
            struct.add(entry.node)
            struct.update(entry.preds)
            struct.update(entry.succs)
            succ_rows.add(entry.node)
            succ_rows.update(entry.preds)
            pred_rows.add(entry.node)
            pred_rows.update(entry.succs)
    return GraphDelta(
        base_version=base_version,
        version=version,
        added=frozenset(added),
        removed=frozenset(removed),
        meta_touched=frozenset(meta),
        struct_touched=frozenset(struct),
        succ_rows=frozenset(succ_rows),
        pred_rows=frozenset(pred_rows),
    )
