"""Virtual-call over-approximation (paper §III-A).

"Virtual function calls are handled by inserting call edges for all
known inheriting definitions.  This over-approximation ensures that all
possible call paths are represented."  Given the program's global class
hierarchy, every virtual call site gets an edge to each override of its
static target.
"""

from __future__ import annotations

from typing import Iterable

from repro.cg.graph import CallGraph, EdgeReason
from repro.cg.local import UnresolvedVirtualCall
from repro.program.ir import SourceProgram


def insert_override_edges(
    graph: CallGraph,
    virtual_calls: Iterable[UnresolvedVirtualCall],
    program: SourceProgram,
) -> int:
    """Add over-approximation edges; returns how many were inserted."""
    inserted = 0
    # cache override sets per static target — OpenFOAM-sized hierarchies
    # repeat the same bases at thousands of call sites
    override_cache: dict[str, list[str]] = {}
    for vc in virtual_calls:
        overriders = override_cache.get(vc.static_target)
        if overriders is None:
            overriders = program.overriders_of(vc.static_target)
            override_cache[vc.static_target] = overriders
        for target in overriders:
            if not graph.has_edge(vc.caller, target):
                inserted += 1
            graph.add_edge(vc.caller, target, EdgeReason.VIRTUAL)
    return inserted
