"""Whole-program call graph with per-function metadata (MetaCG model).

The call graph is CaPI's single source of truth: selectors query node
metadata (statements, flops, loop depth, ``inline`` keyword, system
header origin) and edge structure (call paths).  Edges carry a *reason*
so tests can distinguish statically-found direct edges from virtual-call
over-approximation and profile-validated function-pointer edges.

Function names are interned to dense integer ids on first mention; all
adjacency is id-keyed (``list[set[int]]`` indexed by id) so traversals
and selector set-algebra run over small ints instead of strings.  At the
paper's OpenFOAM scale (410k nodes) this keeps construction linear; the
read-side hot paths go further through :meth:`csr` — a version-keyed
cached :class:`~repro.cg.csr.CsrSnapshot` with numpy ``int32`` CSR
arrays for both adjacency directions — so :meth:`reachable_ids` /
:meth:`reaching_ids` run as frontier-vectorised array sweeps instead of
per-node set churn.  The string-keyed query API is preserved on top of
the id core; ``callees_of``/``callers_of`` return non-copying read-only
views.
"""

from __future__ import annotations

import enum
from collections.abc import Set as AbstractSet
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

import numpy as np

from repro.cg.csr import VECTOR_MIN_SIZE, CsrSnapshot, sweep
from repro.cg.delta import (
    DELTA_LOG_MAX,
    DeltaEntry,
    DeltaKind,
    DeltaLog,
    GraphDelta,
    summarize,
)
from repro.errors import CallGraphError


class EdgeReason(enum.Enum):
    """Why MetaCG believes a call edge exists."""

    DIRECT = "direct"
    #: Over-approximation: edge to every known override of a virtual call.
    VIRTUAL = "virtual"
    #: Function pointer target resolved statically.
    POINTER = "pointer"
    #: Edge inserted by profile validation (observed at runtime only).
    PROFILE = "profile"


@dataclass(frozen=True)
class NodeMeta:
    """Static metadata attached to one call-graph node.

    Mirrors the annotations the MetaCG tooling attaches for CaPI's
    selector pipeline.  ``has_body`` distinguishes definitions from
    declarations seen only as call targets in some TU.
    """

    statements: int = 0
    flops: int = 0
    loop_depth: int = 0
    inline_marked: bool = False
    in_system_header: bool = False
    is_virtual: bool = False
    is_mpi: bool = False
    is_static_initializer: bool = False
    has_body: bool = False
    source_path: str = ""
    tu: str = ""

    def merged_with(self, other: "NodeMeta") -> "NodeMeta":
        """Combine a definition with a declaration (definition wins)."""
        if self.has_body and other.has_body:
            if self != other:
                raise CallGraphError("conflicting definitions cannot be merged")
            return self
        return self if self.has_body else other


@dataclass
class CGNode:
    name: str
    meta: NodeMeta = field(default_factory=NodeMeta)


@dataclass(frozen=True)
class Edge:
    caller: str
    callee: str
    reason: EdgeReason = EdgeReason.DIRECT


class NameSetView(AbstractSet):
    """Read-only set-of-names view over an id-set, without copying.

    Supports the full ``collections.abc.Set`` algebra; binary set ops
    with plain ``set``/``frozenset`` operands produce plain sets.
    """

    __slots__ = ("_graph", "_ids")

    def __init__(self, graph: "CallGraph", ids: AbstractSet):
        self._graph = graph
        self._ids = ids

    def __contains__(self, name: object) -> bool:
        nid = self._graph._ids.get(name)  # type: ignore[arg-type]
        return nid is not None and nid in self._ids

    def __iter__(self) -> Iterator[str]:
        names = self._graph._names
        return (names[i] for i in self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        return f"NameSetView({set(self)!r})"

    @classmethod
    def _from_iterable(cls, it: Iterable[str]) -> set:
        return set(it)


class CallGraph:
    """Mutable whole-program call graph over interned function ids."""

    def __init__(self, *, max_delta_entries: int = DELTA_LOG_MAX) -> None:
        #: live name -> id (removed nodes are dropped from this map)
        self._ids: dict[str, int] = {}
        #: id -> name, never shrinks (ids are stable, tombstones stay)
        self._names: list[str] = []
        #: id -> node, ``None`` for removed nodes
        self._nodes: list[CGNode | None] = []
        self._succ: list[set[int]] = []
        self._pred: list[set[int]] = []
        #: (caller_id << 32 | callee_id) -> reason
        self._edge_reasons: dict[int, EdgeReason] = {}
        self._live_count = 0
        #: structure version; bumped on any mutation (invalidates columns)
        self._version = 0
        #: bounded mutation journal: exactly one entry per version bump
        self._log = DeltaLog(max_entries=max_delta_entries)
        #: NodeMeta attr -> (version, id-indexed value column)
        self._columns: dict[str, tuple[int, list]] = {}
        #: cached CSR snapshot; valid while its version matches
        self._csr: CsrSnapshot | None = None

    def _bump(self, entry: DeltaEntry) -> None:
        """Advance the version and journal the mutation, atomically."""
        self._version += 1
        self._log.record(entry)

    # -- construction -----------------------------------------------------------

    def _intern(self, name: str) -> int:
        """Id of ``name``, creating the node if it does not exist."""
        nid = self._ids.get(name)
        if nid is None:
            nid = len(self._names)
            self._ids[name] = nid
            self._names.append(name)
            self._nodes.append(CGNode(name))
            self._succ.append(set())
            self._pred.append(set())
            self._live_count += 1
            self._bump(DeltaEntry(DeltaKind.NODE_ADDED, nid))
        return nid

    def add_node(self, name: str, meta: NodeMeta | None = None) -> CGNode:
        """Add or refine a node; metadata merges definition-over-declaration."""
        nid = self._ids.get(name)
        if nid is None:
            nid = self._intern(name)
            node = self._nodes[nid]
            assert node is not None
            if meta is not None:
                node.meta = meta
            return node
        node = self._nodes[nid]
        assert node is not None
        if meta is not None:
            merged = meta.merged_with(node.meta)
            # a no-op merge (declaration folded into an existing
            # definition, or an identical re-add) must not kill
            # version-keyed caches and warm service entries
            if merged != node.meta:
                node.meta = merged
                self._bump(DeltaEntry(DeltaKind.META_MERGED, nid))
        return node

    def add_edge(
        self, caller: str, callee: str, reason: EdgeReason = EdgeReason.DIRECT
    ) -> None:
        u = self._intern(caller)
        v = self._intern(callee)
        if v not in self._succ[u]:
            # structure changed: version-keyed caches (columns, cross-run
            # selector results) must observe profile-validated edges too
            self._bump(DeltaEntry(DeltaKind.EDGE_ADDED, u, v))
        self._succ[u].add(v)
        self._pred[v].add(u)
        # keep the strongest (most static) reason when an edge is re-added
        key = (u << 32) | v
        old = self._edge_reasons.get(key)
        if old is None or _REASON_RANK[reason] < _REASON_RANK[old]:
            self._edge_reasons[key] = reason
            if old is not None:
                # a reason upgrade is observable metadata: version-keyed
                # caches must not survive it
                self._bump(DeltaEntry(DeltaKind.REASON_UPGRADED, u, v))

    def remove_node(self, name: str) -> None:
        nid = self._ids.get(name)
        if nid is None:
            raise CallGraphError(f"unknown node {name!r}")
        # journal the neighbour rows before they are cleared: an
        # incremental CSR refresh must patch exactly these rows
        entry = DeltaEntry(
            DeltaKind.NODE_REMOVED,
            nid,
            preds=tuple(self._pred[nid]),
            succs=tuple(self._succ[nid]),
        )
        for p in self._pred[nid]:
            self._succ[p].discard(nid)
            self._edge_reasons.pop((p << 32) | nid, None)
        for s in self._succ[nid]:
            self._pred[s].discard(nid)
            self._edge_reasons.pop((nid << 32) | s, None)
        self._succ[nid].clear()
        self._pred[nid].clear()
        self._nodes[nid] = None
        del self._ids[name]
        self._live_count -= 1
        self._bump(entry)

    # -- id layer ----------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone structure version; bumps on any mutation.

        Cross-run caches (selector results, meta columns) key against
        this: equal versions of the same graph object guarantee equal
        structure and metadata.
        """
        return self._version

    def delta_since(self, version: int) -> GraphDelta | None:
        """What changed since ``version``, or ``None`` (rebuild needed).

        Folds the mutation journal into one
        :class:`~repro.cg.delta.GraphDelta`.  ``None`` means the bounded
        log truncated past ``version`` (or ``version`` is not of this
        graph's lineage) and the consumer must fall back to a full
        rebuild — the consumer-side contract every delta-aware cache
        (CSR refresh, cross-run retention, warm store entries) follows.
        """
        if version == self._version:
            return GraphDelta(base_version=version, version=version)
        entries = self._log.entries_since(version, self._version)
        if entries is None:
            return None
        return summarize(entries, version, self._version)

    @property
    def id_bound(self) -> int:
        """Exclusive upper bound on node ids (for sizing visited arrays)."""
        return len(self._names)

    def id_of(self, name: str) -> int | None:
        """Interned id of a live node, or ``None``."""
        return self._ids.get(name)

    def name_of(self, nid: int) -> str:
        return self._names[nid]

    def node_ids(self) -> Iterator[int]:
        """All live node ids."""
        return iter(self._ids.values())

    def node_id_set(self) -> set[int]:
        return set(self._ids.values())

    def meta_of(self, nid: int) -> NodeMeta:
        node = self._nodes[nid]
        if node is None:
            raise CallGraphError(f"node id {nid} was removed")
        return node.meta

    def meta_column(self, attr: str) -> list:
        """Dense id-indexed column of one ``NodeMeta`` attribute.

        Built lazily, cached until the graph mutates.  Slots of removed
        nodes hold ``None``; callers index live ids only.  This turns
        per-node ``meta`` attribute chasing in selector filters into a
        single list indexing.
        """
        cached = self._columns.get(attr)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        column = [
            getattr(node.meta, attr) if node is not None else None
            for node in self._nodes
        ]
        self._columns[attr] = (self._version, column)
        return column

    def succ_ids(self, nid: int) -> set[int]:
        """Callee ids of one node — the live set, do not mutate."""
        return self._succ[nid]

    def pred_ids(self, nid: int) -> set[int]:
        """Caller ids of one node — the live set, do not mutate."""
        return self._pred[nid]

    def names_to_ids(self, names: Iterable[str]) -> set[int]:
        """Ids of the given names; unknown names are skipped."""
        get = self._ids.get
        return {nid for nid in map(get, names) if nid is not None}

    def ids_to_names(self, ids: Iterable[int]) -> frozenset[str]:
        names = self._names
        return frozenset(names[i] for i in ids)

    # -- queries ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __len__(self) -> int:
        return self._live_count

    def node(self, name: str) -> CGNode:
        nid = self._ids.get(name)
        if nid is None:
            raise CallGraphError(f"unknown node {name!r}")
        node = self._nodes[nid]
        assert node is not None
        return node

    def nodes(self) -> Iterator[CGNode]:
        return (n for n in self._nodes if n is not None)

    def node_names(self) -> set[str]:
        return set(self._ids)

    def callees_of(self, name: str) -> NameSetView:
        nid = self._ids.get(name)
        return NameSetView(self, self._succ[nid] if nid is not None else frozenset())

    def callers_of(self, name: str) -> NameSetView:
        nid = self._ids.get(name)
        return NameSetView(self, self._pred[nid] if nid is not None else frozenset())

    def edges(self) -> Iterator[Edge]:
        names = self._names
        for key, reason in self._edge_reasons.items():
            yield Edge(names[key >> 32], names[key & 0xFFFFFFFF], reason)

    def edge_count(self) -> int:
        return len(self._edge_reasons)

    def edge_reason(self, caller: str, callee: str) -> EdgeReason | None:
        u = self._ids.get(caller)
        v = self._ids.get(callee)
        if u is None or v is None:
            return None
        return self._edge_reasons.get((u << 32) | v)

    def has_edge(self, caller: str, callee: str) -> bool:
        return self.edge_reason(caller, callee) is not None

    # -- traversal -----------------------------------------------------------------

    def csr(self) -> CsrSnapshot:
        """Frozen CSR snapshot of the current graph version.

        Cached until the graph mutates; after a mutation the next access
        *refreshes* the previous snapshot through the delta journal
        (:meth:`~repro.cg.csr.CsrSnapshot.refresh` — bit-identical to a
        from-scratch build) when the edit touched few rows, and rebuilds
        from scratch when the journal truncated or the delta is large
        relative to the graph.
        """
        snapshot = self._csr
        if snapshot is None:
            snapshot = CsrSnapshot(self)
        elif snapshot.version != self._version:
            snapshot = snapshot.refresh(
                self, max_rows=max(64, len(self._names) >> 3)
            )
        self._csr = snapshot
        return snapshot

    def reachable_ids(self, roots: Iterable[int]) -> set[int]:
        """Forward-reachable id set (roots included)."""
        return self._sweep(roots, reverse=False)

    def reaching_ids(self, targets: Iterable[int]) -> set[int]:
        """Reverse-reachable id set: ids from which a target is reachable."""
        return self._sweep(targets, reverse=True)

    def _sweep(self, seeds: Iterable[int], *, reverse: bool) -> set[int]:
        """Reachability sweep; the visited set is built exactly once.

        Small graphs traverse the id-set adjacency directly (per-wave
        numpy dispatch costs more than it vectorises there); past
        ``VECTOR_MIN_SIZE`` the frontier-vectorised CSR sweep takes
        over.  Results are identical either way.
        """
        if len(self._names) + len(self._edge_reasons) < VECTOR_MIN_SIZE:
            adj = self._pred if reverse else self._succ
            out = set(seeds)
            stack = list(out)
            while stack:
                nid = stack.pop()
                for nxt in adj[nid]:
                    if nxt not in out:
                        out.add(nxt)
                        stack.append(nxt)
            return out
        snapshot = self.csr()
        if reverse:
            indptr, indices = snapshot.pred_indptr, snapshot.pred_indices
        else:
            indptr, indices = snapshot.succ_indptr, snapshot.succ_indices
        visited = sweep(indptr, indices, seeds, snapshot.n)
        return set(np.flatnonzero(visited).tolist())

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Forward-reachable node set (roots included when present)."""
        return set(self.ids_to_names(self.reachable_ids(self.names_to_ids(roots))))

    def reaching(self, targets: Iterable[str]) -> set[str]:
        """Reverse-reachable set: nodes from which a target is reachable."""
        return set(self.ids_to_names(self.reaching_ids(self.names_to_ids(targets))))

    def copy(self, *, max_delta_entries: int | None = None) -> "CallGraph":
        if max_delta_entries is None:
            max_delta_entries = self._log.max_entries
        out = CallGraph(max_delta_entries=max_delta_entries)
        for node in self.nodes():
            out.add_node(node.name, replace(node.meta))
        names = self._names
        for key, reason in self._edge_reasons.items():
            out.add_edge(names[key >> 32], names[key & 0xFFFFFFFF], reason)
        return out


_REASON_RANK = {
    EdgeReason.DIRECT: 0,
    EdgeReason.VIRTUAL: 1,
    EdgeReason.POINTER: 2,
    EdgeReason.PROFILE: 3,
}
