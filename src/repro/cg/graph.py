"""Whole-program call graph with per-function metadata (MetaCG model).

The call graph is CaPI's single source of truth: selectors query node
metadata (statements, flops, loop depth, ``inline`` keyword, system
header origin) and edge structure (call paths).  Edges carry a *reason*
so tests can distinguish statically-found direct edges from virtual-call
over-approximation and profile-validated function-pointer edges.

Adjacency is plain ``dict[str, set[str]]`` — at the paper's OpenFOAM
scale (410k nodes) this keeps construction and traversal linear and
allocation-light.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.errors import CallGraphError


class EdgeReason(enum.Enum):
    """Why MetaCG believes a call edge exists."""

    DIRECT = "direct"
    #: Over-approximation: edge to every known override of a virtual call.
    VIRTUAL = "virtual"
    #: Function pointer target resolved statically.
    POINTER = "pointer"
    #: Edge inserted by profile validation (observed at runtime only).
    PROFILE = "profile"


@dataclass(frozen=True)
class NodeMeta:
    """Static metadata attached to one call-graph node.

    Mirrors the annotations the MetaCG tooling attaches for CaPI's
    selector pipeline.  ``has_body`` distinguishes definitions from
    declarations seen only as call targets in some TU.
    """

    statements: int = 0
    flops: int = 0
    loop_depth: int = 0
    inline_marked: bool = False
    in_system_header: bool = False
    is_virtual: bool = False
    is_mpi: bool = False
    is_static_initializer: bool = False
    has_body: bool = False
    source_path: str = ""
    tu: str = ""

    def merged_with(self, other: "NodeMeta") -> "NodeMeta":
        """Combine a definition with a declaration (definition wins)."""
        if self.has_body and other.has_body:
            if self != other:
                raise CallGraphError("conflicting definitions cannot be merged")
            return self
        return self if self.has_body else other


@dataclass
class CGNode:
    name: str
    meta: NodeMeta = field(default_factory=NodeMeta)


@dataclass(frozen=True)
class Edge:
    caller: str
    callee: str
    reason: EdgeReason = EdgeReason.DIRECT


class CallGraph:
    """Mutable whole-program call graph."""

    def __init__(self) -> None:
        self._nodes: dict[str, CGNode] = {}
        self._succ: dict[str, set[str]] = {}
        self._pred: dict[str, set[str]] = {}
        self._edge_reasons: dict[tuple[str, str], EdgeReason] = {}

    # -- construction -----------------------------------------------------------

    def add_node(self, name: str, meta: NodeMeta | None = None) -> CGNode:
        """Add or refine a node; metadata merges definition-over-declaration."""
        node = self._nodes.get(name)
        if node is None:
            node = CGNode(name, meta or NodeMeta())
            self._nodes[name] = node
            self._succ[name] = set()
            self._pred[name] = set()
        elif meta is not None:
            node.meta = meta.merged_with(node.meta)
        return node

    def add_edge(
        self, caller: str, callee: str, reason: EdgeReason = EdgeReason.DIRECT
    ) -> None:
        if caller not in self._nodes:
            self.add_node(caller)
        if callee not in self._nodes:
            self.add_node(callee)
        self._succ[caller].add(callee)
        self._pred[callee].add(caller)
        # keep the strongest (most static) reason when an edge is re-added
        key = (caller, callee)
        old = self._edge_reasons.get(key)
        if old is None or _REASON_RANK[reason] < _REASON_RANK[old]:
            self._edge_reasons[key] = reason

    def remove_node(self, name: str) -> None:
        if name not in self._nodes:
            raise CallGraphError(f"unknown node {name!r}")
        for p in list(self._pred[name]):
            self._succ[p].discard(name)
            self._edge_reasons.pop((p, name), None)
        for s in list(self._succ[name]):
            self._pred[s].discard(name)
            self._edge_reasons.pop((name, s), None)
        del self._nodes[name], self._succ[name], self._pred[name]

    # -- queries ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> CGNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise CallGraphError(f"unknown node {name!r}") from None

    def nodes(self) -> Iterator[CGNode]:
        return iter(self._nodes.values())

    def node_names(self) -> set[str]:
        return set(self._nodes)

    def callees_of(self, name: str) -> set[str]:
        return set(self._succ.get(name, ()))

    def callers_of(self, name: str) -> set[str]:
        return set(self._pred.get(name, ()))

    def edges(self) -> Iterator[Edge]:
        for (caller, callee), reason in self._edge_reasons.items():
            yield Edge(caller, callee, reason)

    def edge_count(self) -> int:
        return len(self._edge_reasons)

    def edge_reason(self, caller: str, callee: str) -> EdgeReason | None:
        return self._edge_reasons.get((caller, callee))

    def has_edge(self, caller: str, callee: str) -> bool:
        return (caller, callee) in self._edge_reasons

    # -- traversal -----------------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Forward-reachable node set (roots included when present)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self._nodes]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self._succ[name] - seen)
        return seen

    def reaching(self, targets: Iterable[str]) -> set[str]:
        """Reverse-reachable set: nodes from which a target is reachable."""
        seen: set[str] = set()
        stack = [t for t in targets if t in self._nodes]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self._pred[name] - seen)
        return seen

    def copy(self) -> "CallGraph":
        out = CallGraph()
        for node in self._nodes.values():
            out.add_node(node.name, replace(node.meta))
        for (caller, callee), reason in self._edge_reasons.items():
            out.add_edge(caller, callee, reason)
        return out


_REASON_RANK = {
    EdgeReason.DIRECT: 0,
    EdgeReason.VIRTUAL: 1,
    EdgeReason.POINTER: 2,
    EdgeReason.PROFILE: 3,
}
