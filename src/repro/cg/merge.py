"""Whole-program call-graph merge (MetaCG step 2).

Local per-TU graphs are merged into one graph: definitions override
declarations, edges are unioned, virtual call sites get
over-approximation edges to every known override, and statically
resolvable function pointers contribute pointer edges.  The result is
the graph CaPI's selector pipeline runs on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cg.fpointers import resolve_static_pointers
from repro.cg.graph import CallGraph
from repro.cg.local import LocalCallGraph, build_local_cg
from repro.cg.virtual import insert_override_edges
from repro.errors import MergeConflictError
from repro.program.ir import SourceProgram


def merge_local_graphs(
    locals_: Sequence[LocalCallGraph], program: SourceProgram
) -> CallGraph:
    """Merge local graphs into the whole-program call graph.

    ``program`` supplies the two global facts local analysis cannot
    see: the class hierarchy (for virtual-call over-approximation) and
    the registered pointer-target sets.
    """
    merged = CallGraph()
    for local in locals_:
        for node in local.graph.nodes():
            try:
                merged.add_node(node.name, node.meta)
            except Exception as exc:  # pragma: no cover - defensive
                raise MergeConflictError(
                    f"node {node.name!r} from TU {local.tu_name!r}: {exc}"
                ) from exc
        for edge in local.graph.edges():
            merged.add_edge(edge.caller, edge.callee, edge.reason)

    all_virtual = [vc for local in locals_ for vc in local.virtual_calls]
    insert_override_edges(merged, all_virtual, program)

    all_pointers = [pc for local in locals_ for pc in local.pointer_calls]
    resolve_static_pointers(merged, all_pointers, program)
    return merged


def build_whole_program_cg(
    program: SourceProgram, *, tus: Iterable[str] | None = None
) -> CallGraph:
    """End-to-end MetaCG workflow: local construction, then merge.

    ``tus`` restricts the merge to a subset of translation units — the
    paper's workflow note about "manually combining relevant source
    files" (Fig. 2, step 4).  Omitting TUs yields a partial graph with
    declaration-only nodes, exactly as MetaCG would.
    """
    selected = set(tus) if tus is not None else None
    locals_ = [
        build_local_cg(tu)
        for name, tu in program.translation_units.items()
        if selected is None or name in selected
    ]
    return merge_local_graphs(locals_, program)
