"""Source-level intermediate representation of a target application.

The paper's toolchain consumes three things from a real C++ code base:

* per-translation-unit structure (for MetaCG local call-graph
  construction),
* static function metadata — statement count, flops, loop depth,
  ``inline`` keyword, system-header origin — used by CaPI selectors,
* the link layout (which functions land in the executable vs which DSO),
  which drives the XRay DSO extension.

This IR captures exactly that.  It deliberately does **not** model
statements or expressions; CaPI never needs them, only their counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import ProgramModelError

#: Name of the special program entry function.
ENTRY_FUNCTION = "main"

#: Prefix used to recognise MPI operations (the simulated PMPI layer and
#: the bundled ``mpi.capi`` selector module both key off this).
MPI_PREFIX = "MPI_"


class CallKind(enum.Enum):
    """How a call site dispatches to its target."""

    DIRECT = "direct"
    #: C++ virtual dispatch: the static target is a virtual method; the
    #: dynamic target may be any known override (MetaCG over-approximates).
    VIRTUAL = "virtual"
    #: Call through a function pointer; targets may be statically
    #: resolvable or only discoverable from a profile.
    POINTER = "pointer"


class Visibility(enum.Enum):
    """Symbol visibility, mirroring ELF ``default`` vs ``hidden``.

    Hidden symbols are the reason DynCaPI cannot resolve 1,444 functions
    in the paper's OpenFOAM case (section VI-B): they exist in the DSO
    but are absent from its dynamic symbol table.
    """

    DEFAULT = "default"
    HIDDEN = "hidden"


@dataclass(frozen=True)
class CallSite:
    """One call site inside a function body.

    ``calls_per_invocation`` is the number of times the site fires per
    invocation of the enclosing function — the execution engine uses it
    to expand the dynamic call tree deterministically.
    """

    callee: str | None = None
    kind: CallKind = CallKind.DIRECT
    #: For ``VIRTUAL`` calls: the statically-declared method.  Overriders
    #: are discovered from the program's class hierarchy, not stored here.
    #: For ``POINTER`` calls: the pointer variable's identity.
    pointer_id: str | None = None
    calls_per_invocation: int = 1

    def __post_init__(self) -> None:
        if self.calls_per_invocation < 0:
            raise ProgramModelError(
                f"negative call multiplicity at call site to {self.callee!r}"
            )
        if self.kind is CallKind.POINTER:
            if self.pointer_id is None:
                raise ProgramModelError("pointer call site needs a pointer_id")
        elif self.callee is None:
            raise ProgramModelError(f"{self.kind.value} call site needs a callee")


@dataclass
class FunctionDef:
    """A function definition with the static metadata CaPI selectors use.

    ``base_cost`` is the *exclusive* virtual-cycle cost of one invocation
    (excluding callees); if left at 0 it is derived from ``statements``
    and ``flops`` during compilation.
    """

    name: str
    statements: int = 1
    flops: int = 0
    loop_depth: int = 0
    inline_marked: bool = False
    in_system_header: bool = False
    visibility: Visibility = Visibility.DEFAULT
    #: Name of the virtual method this function overrides (C++ `override`);
    #: ``None`` for non-virtual functions.  A virtual base method points at
    #: itself.
    overrides: str | None = None
    is_static_initializer: bool = False
    #: True if the function's address is taken somewhere (prevents the
    #: compiler from dropping its symbol after inlining).
    address_taken: bool = False
    base_cost: float = 0.0
    #: Source file path (used by ``byPath`` selectors and filter files).
    source_path: str = ""
    call_sites: list[CallSite] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramModelError("function name must be non-empty")
        if self.statements < 0 or self.flops < 0 or self.loop_depth < 0:
            raise ProgramModelError(f"negative metadata on function {self.name!r}")

    # -- derived properties -------------------------------------------------

    @property
    def is_virtual(self) -> bool:
        """True for virtual methods (base or override)."""
        return self.overrides is not None

    @property
    def is_mpi(self) -> bool:
        """True for MPI operations (``MPI_*``), intercepted via PMPI."""
        return self.name.startswith(MPI_PREFIX)

    @property
    def instruction_count(self) -> int:
        """Approximate machine instruction count before inlining.

        XRay's machine pass pre-filters functions below an instruction
        threshold; we derive the count from source metadata the same way
        a simple lowering would: every statement costs a handful of
        instructions, flops one each, and loops add bookkeeping.
        """
        return self.statements * 3 + self.flops + self.loop_depth * 4 + 2

    def callees(self) -> Iterator[CallSite]:
        return iter(self.call_sites)

    def add_call(
        self,
        callee: str,
        *,
        kind: CallKind = CallKind.DIRECT,
        calls_per_invocation: int = 1,
        pointer_id: str | None = None,
    ) -> None:
        self.call_sites.append(
            CallSite(
                callee=callee,
                kind=kind,
                calls_per_invocation=calls_per_invocation,
                pointer_id=pointer_id,
            )
        )


@dataclass
class TranslationUnit:
    """One compilation unit: a named source file plus its functions."""

    name: str
    functions: dict[str, FunctionDef] = field(default_factory=dict)

    def add(self, fn: FunctionDef) -> FunctionDef:
        if fn.name in self.functions:
            raise ProgramModelError(
                f"duplicate definition of {fn.name!r} in TU {self.name!r}"
            )
        if not fn.source_path:
            fn.source_path = self.name
        self.functions[fn.name] = fn
        return fn

    def __iter__(self) -> Iterator[FunctionDef]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return len(self.functions)


@dataclass
class SourceProgram:
    """A whole application: translation units plus its link layout.

    ``libraries`` maps a DSO name (e.g. ``"libfiniteVolume.so"``) to the
    translation units linked into it; every TU not claimed by a library
    is linked into the main executable.

    ``pointer_targets`` records, per function-pointer identity, the set
    of functions it may point at, and whether static analysis can see
    that set (``static_resolvable``) — MetaCG resolves the static ones
    and relies on profile validation for the rest.
    """

    name: str
    entry: str = ENTRY_FUNCTION
    translation_units: dict[str, TranslationUnit] = field(default_factory=dict)
    libraries: dict[str, list[str]] = field(default_factory=dict)
    pointer_targets: dict[str, "PointerTargets"] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    def add_tu(self, tu: TranslationUnit) -> TranslationUnit:
        if tu.name in self.translation_units:
            raise ProgramModelError(f"duplicate translation unit {tu.name!r}")
        self.translation_units[tu.name] = tu
        return tu

    def add_library(self, lib_name: str, tu_names: Iterable[str]) -> None:
        if lib_name in self.libraries:
            raise ProgramModelError(f"duplicate library {lib_name!r}")
        self.libraries[lib_name] = list(tu_names)

    def register_pointer(
        self, pointer_id: str, targets: Iterable[str], *, static_resolvable: bool = True
    ) -> None:
        self.pointer_targets[pointer_id] = PointerTargets(
            pointer_id, tuple(targets), static_resolvable
        )

    # -- queries --------------------------------------------------------------

    def functions(self) -> Iterator[FunctionDef]:
        for tu in self.translation_units.values():
            yield from tu

    def function(self, name: str) -> FunctionDef:
        for tu in self.translation_units.values():
            if name in tu.functions:
                return tu.functions[name]
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(name in tu.functions for tu in self.translation_units.values())

    def function_count(self) -> int:
        return sum(len(tu) for tu in self.translation_units.values())

    def tu_of(self, function_name: str) -> str:
        for tu in self.translation_units.values():
            if function_name in tu.functions:
                return tu.name
        raise KeyError(function_name)

    def executable_tus(self) -> list[str]:
        """Translation units linked into the main executable."""
        claimed = {t for tus in self.libraries.values() for t in tus}
        return [name for name in self.translation_units if name not in claimed]

    def overriders_of(self, base: str) -> list[str]:
        """All functions overriding virtual method ``base`` (incl. itself)."""
        return sorted(
            fn.name for fn in self.functions() if fn.overrides == base
        )

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity of the whole program.

        Direct callees must exist; library TU lists must reference real
        TUs and not claim a TU twice; the entry function must exist and
        live in the executable; pointer targets must exist.
        """
        names = {fn.name for fn in self.functions()}
        if self.entry not in names:
            raise ProgramModelError(f"entry function {self.entry!r} not defined")
        claimed: dict[str, str] = {}
        for lib, tus in self.libraries.items():
            for tu in tus:
                if tu not in self.translation_units:
                    raise ProgramModelError(
                        f"library {lib!r} references unknown TU {tu!r}"
                    )
                if tu in claimed:
                    raise ProgramModelError(
                        f"TU {tu!r} linked into both {claimed[tu]!r} and {lib!r}"
                    )
                claimed[tu] = lib
        if self.tu_of(self.entry) not in self.executable_tus():
            raise ProgramModelError("entry function must live in the executable")
        for fn in self.functions():
            for cs in fn.call_sites:
                if cs.kind is CallKind.POINTER:
                    if cs.pointer_id not in self.pointer_targets:
                        raise ProgramModelError(
                            f"{fn.name}: unregistered pointer {cs.pointer_id!r}"
                        )
                elif cs.callee not in names:
                    raise ProgramModelError(
                        f"{fn.name}: call to undefined function {cs.callee!r}"
                    )
        for pt in self.pointer_targets.values():
            for tgt in pt.targets:
                if tgt not in names:
                    raise ProgramModelError(
                        f"pointer {pt.pointer_id!r} targets undefined {tgt!r}"
                    )


@dataclass(frozen=True)
class PointerTargets:
    """Possible targets of one function pointer identity."""

    pointer_id: str
    targets: tuple[str, ...]
    static_resolvable: bool = True


def resolve_call_targets(
    program: SourceProgram, site: CallSite, *, include_dynamic_pointers: bool = True
) -> list[str]:
    """Ground truth dynamic targets of a call site.

    Virtual calls may reach any override of the static target; pointer
    calls any registered target.  The execution engine uses this; MetaCG
    applies its own (over- or under-) approximation instead.
    """
    if site.kind is CallKind.DIRECT:
        return [site.callee] if site.callee else []
    if site.kind is CallKind.VIRTUAL:
        assert site.callee is not None
        overr = program.overriders_of(site.callee)
        return overr or [site.callee]
    pt = program.pointer_targets[site.pointer_id or ""]
    if not pt.static_resolvable and not include_dynamic_pointers:
        return []
    return list(pt.targets)
