"""Linker: lay out machine functions into an executable and DSOs.

The layout decides everything the XRay runtime later consumes:

* function offsets and sizes (sled addresses derive from them),
* the per-object XRay function-id assignment (1-based, layout order),
* symbol tables with visibility, and
* whether the object's trampolines are position-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.program.binary import BinaryObject, ObjectKind, Symbol, SymbolTable
from repro.program.compiler import CompiledProgram
from repro.program.machine import FUNCTION_HEADER_BYTES, MachineFunction
from repro.program.memory import PAGE_SIZE
from repro.xray.sled import SLED_BYTES, SledKind, SledRecord


@dataclass
class LinkedProgram:
    """A fully linked application: one executable plus its DSOs."""

    compiled: CompiledProgram
    executable: BinaryObject
    dsos: list[BinaryObject] = field(default_factory=list)

    def all_objects(self) -> list[BinaryObject]:
        return [self.executable, *self.dsos]

    def object_of(self, function_name: str) -> BinaryObject:
        for obj in self.all_objects():
            if function_name in obj.functions:
                return obj
        raise KeyError(function_name)

    def function(self, name: str) -> MachineFunction:
        return self.object_of(name).functions[name]

    def total_sled_count(self) -> int:
        return sum(len(o.sled_records) for o in self.all_objects())

    def patchable_function_names(self) -> set[str]:
        """Functions that received XRay sleds anywhere in the program."""
        return {
            rec.function_name
            for obj in self.all_objects()
            for rec in obj.sled_records
            if rec.kind is SledKind.ENTRY
        }


class Linker:
    """Group compiled machine functions into binary objects."""

    def link(self, compiled: CompiledProgram) -> LinkedProgram:
        program = compiled.program
        tu_to_lib: dict[str, str] = {}
        for lib, tus in program.libraries.items():
            for tu in tus:
                tu_to_lib[tu] = lib

        groups: dict[str, list[MachineFunction]] = {program.name: []}
        for lib in program.libraries:
            groups[lib] = []
        for mf in compiled.machine_functions.values():
            target = tu_to_lib.get(mf.tu, program.name)
            groups[target].append(mf)

        if not groups[program.name]:
            raise LinkError("executable would contain no functions")

        executable = self._emit(
            program.name,
            ObjectKind.EXECUTABLE,
            groups.pop(program.name),
            compiled,
            pic=False,
        )
        dsos = [
            self._emit(
                lib,
                ObjectKind.SHARED_OBJECT,
                functions,
                compiled,
                pic=compiled.config.pic,
            )
            for lib, functions in groups.items()
        ]
        return LinkedProgram(compiled=compiled, executable=executable, dsos=dsos)

    # -- layout ---------------------------------------------------------------

    def _emit(
        self,
        name: str,
        kind: ObjectKind,
        functions: list[MachineFunction],
        compiled: CompiledProgram,
        *,
        pic: bool,
    ) -> BinaryObject:
        obj = BinaryObject(name=name, kind=kind, pic=pic)
        offset = 0
        next_fid = 1
        # deterministic layout: TU order then name, approximating how a
        # linker concatenates object files
        for mf in sorted(functions, key=lambda f: (f.tu, f.name)):
            mf.offset = offset
            obj.functions[mf.name] = mf
            if mf.has_symbol:
                obj.symtab.add(
                    Symbol(
                        name=mf.name,
                        offset=offset,
                        size=mf.size_bytes,
                        visibility=mf.visibility,
                    )
                )
            if mf.xray_instrumented:
                fid = next_fid
                next_fid += 1
                obj.function_ids[fid] = mf.name
                entry_off = offset + FUNCTION_HEADER_BYTES
                exit_off = offset + mf.size_bytes - SLED_BYTES
                obj.sled_records.append(
                    SledRecord(entry_off, SledKind.ENTRY, mf.name, fid)
                )
                obj.sled_records.append(
                    SledRecord(exit_off, SledKind.EXIT, mf.name, fid)
                )
            offset += mf.size_bytes
        # retained symbols of fully-inlined functions (vague linkage):
        # they appear in the symbol table but own no code range.
        for fname in sorted(compiled.symbol_retained_inlined):
            tu = compiled.program.tu_of(fname)
            lib = self._lib_of(compiled, tu)
            if (lib or compiled.program.name) == name and fname not in obj.symtab:
                obj.symtab.add(Symbol(name=fname, offset=offset, size=0))
        obj.image_size = _round_up(max(offset, 1), PAGE_SIZE)
        return obj

    @staticmethod
    def _lib_of(compiled: CompiledProgram, tu: str) -> str | None:
        for lib, tus in compiled.program.libraries.items():
            if tu in tus:
                return lib
        return None


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
