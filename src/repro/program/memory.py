"""Simulated process address space with page-level protection.

XRay's patching relies on ``mprotect``: text pages containing sleds are
flipped to copy-on-write writable, the NOP bytes are rewritten, and the
pages are flipped back.  This module models exactly that — a write to a
non-writable page raises :class:`~repro.errors.SegmentationFault`, so a
patching implementation that forgets the ``mprotect`` dance fails the
same way it would on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoaderError, SegmentationFault

PAGE_SIZE = 4096


def page_of(address: int) -> int:
    return address // PAGE_SIZE


def page_range(start: int, length: int) -> range:
    """Indices of all pages overlapping ``[start, start+length)``."""
    if length <= 0:
        return range(0)
    return range(page_of(start), page_of(start + length - 1) + 1)


@dataclass
class MappedRegion:
    """A contiguous mapping (one loaded object's text image)."""

    name: str
    base: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclass
class ProcessImage:
    """The virtual address space of one simulated process.

    Regions are mapped page-aligned by a bump allocator; page protection
    is tracked per page index.  Text pages start read-only+executable,
    matching how a real loader maps ``.text``.
    """

    regions: list[MappedRegion] = field(default_factory=list)
    _writable_pages: set[int] = field(default_factory=set)
    _next_base: int = 0x400000  # conventional ELF load address
    #: Statistics: mprotect invocations (patching cost model input).
    mprotect_calls: int = 0

    # -- mapping --------------------------------------------------------------

    def map_region(self, name: str, size: int) -> MappedRegion:
        """Map ``size`` zeroed bytes at the next free page-aligned base."""
        if size <= 0:
            raise LoaderError(f"cannot map empty region {name!r}")
        base = self._next_base
        region = MappedRegion(name=name, base=base, data=bytearray(size))
        self.regions.append(region)
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        # one guard page between mappings
        self._next_base = base + (pages + 1) * PAGE_SIZE
        return region

    def unmap(self, region: MappedRegion) -> None:
        if region not in self.regions:
            raise LoaderError(f"region {region.name!r} is not mapped")
        self.regions.remove(region)
        for page in page_range(region.base, len(region.data)):
            self._writable_pages.discard(page)

    def region_at(self, address: int) -> MappedRegion:
        for region in self.regions:
            if region.contains(address):
                return region
        raise SegmentationFault(f"access to unmapped address {address:#x}")

    # -- protection -----------------------------------------------------------

    def mprotect(self, start: int, length: int, *, writable: bool) -> None:
        """Change protection of all pages overlapping the range.

        Like the real syscall this is page-granular: protecting a single
        sled makes its whole page writable.
        """
        self.region_at(start)  # fault on unmapped ranges, like the syscall
        self.mprotect_calls += 1
        for page in page_range(start, length):
            if writable:
                self._writable_pages.add(page)
            else:
                self._writable_pages.discard(page)

    def is_writable(self, address: int) -> bool:
        return page_of(address) in self._writable_pages

    # -- access ---------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        region = self.region_at(address)
        if address + length > region.end:
            raise SegmentationFault(
                f"read of {length} bytes at {address:#x} crosses region end"
            )
        offset = address - region.base
        return bytes(region.data[offset : offset + length])

    def write(self, address: int, payload: bytes) -> None:
        """Write bytes, enforcing page protection."""
        region = self.region_at(address)
        if address + len(payload) > region.end:
            raise SegmentationFault(
                f"write of {len(payload)} bytes at {address:#x} crosses region end"
            )
        for page in page_range(address, len(payload)):
            if page not in self._writable_pages:
                raise SegmentationFault(
                    f"write to non-writable page at {address:#x} "
                    f"(did you forget mprotect?)"
                )
        offset = address - region.base
        region.data[offset : offset + len(payload)] = payload
