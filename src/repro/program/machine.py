"""Machine-level artifacts produced by the compiler pipeline.

A :class:`MachineFunction` is the post-inlining lowering of a source
function: concrete instruction count, folded-in costs of inlined
callees, and machine call sites with multiplicities.  The linker lays
these out into binary objects; the execution engine walks their call
sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.ir import CallKind, Visibility

#: Bytes per modelled machine instruction (x86-64 average-ish; only the
#: *relative* sizes matter for page/sled layout).
INSTRUCTION_BYTES = 4

#: Function prologue bytes reserved before the entry sled.
FUNCTION_HEADER_BYTES = 16


@dataclass(frozen=True)
class MachineCallSite:
    """A lowered call site: target, dispatch kind, dynamic multiplicity."""

    callee: str | None
    kind: CallKind
    pointer_id: str | None
    count: int


@dataclass
class MachineFunction:
    """One function after inlining and lowering.

    ``offset`` is assigned by the linker (relative to the containing
    object's base).  ``has_symbol`` is False when inlining removed the
    function's symbol — the condition the paper's inlining-compensation
    approximates from the binary.
    """

    name: str
    tu: str
    source_path: str
    instruction_count: int
    base_cost: float
    visibility: Visibility = Visibility.DEFAULT
    has_symbol: bool = True
    is_static_initializer: bool = False
    is_mpi: bool = False
    #: Names of functions whose bodies were folded into this one.
    absorbed: tuple[str, ...] = ()
    call_sites: list[MachineCallSite] = field(default_factory=list)
    #: Whether the XRay machine pass put sleds into this function.
    xray_instrumented: bool = False
    offset: int = -1

    @property
    def size_bytes(self) -> int:
        """Laid-out size: header + body + (optional) entry/exit sleds."""
        from repro.xray.sled import SLED_BYTES  # local: avoid import cycle

        body = max(self.instruction_count, 1) * INSTRUCTION_BYTES
        sleds = 2 * SLED_BYTES if self.xray_instrumented else 0
        return FUNCTION_HEADER_BYTES + body + sleds
