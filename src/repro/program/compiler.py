"""The compiler pipeline: inlining pass + XRay sled-insertion machine pass.

Two decisions made here drive everything the paper evaluates:

* **Inlining** happens *before* the XRay machine pass, so inlined
  functions never receive sleds and cannot be patched at runtime
  (paper section V-E).  Whether the symbol of an inlined function
  survives in the binary is a per-function compiler quirk — CaPI's
  inlining compensation *approximates* inlining from missing symbols,
  and the paper notes the approximation is imperfect.  We reproduce
  both the rule and the exception.

* **Sled insertion** pre-filters functions below an instruction-count
  threshold (``xray_instruction_threshold``), exactly like the real
  ``-fxray-instruction-threshold``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro._util import stable_hash
from repro.cg.csr import edges_to_csr, tarjan_scc
from repro.errors import CompilationError
from repro.program.ir import CallKind, FunctionDef, SourceProgram
from repro.program.machine import MachineCallSite, MachineFunction


@dataclass(frozen=True)
class CompilerConfig:
    """Knobs of the simulated Clang invocation.

    ``opt_level`` 0 disables inlining entirely (like ``-O0``); levels 2/3
    differ in how aggressively unmarked small functions are inlined,
    matching the paper's builds (``-O2`` for openfoam, ``-O3`` for
    lulesh).
    """

    opt_level: int = 2
    #: ``-fxray-instruction-threshold``: functions below it get no sleds.
    xray_instruction_threshold: int = 1
    #: Max pre-inline instruction count for ``inline``-marked functions.
    inline_marked_max: int = 80
    #: Max instruction count for *unmarked* functions to be auto-inlined.
    auto_inline_max: int = 8
    #: One in ``symbol_retention_modulus`` inlined functions keeps its
    #: symbol anyway (linkonce_odr kept for vague-linkage reasons); this
    #: exercises the imperfection of symbol-based inlining detection.
    symbol_retention_modulus: int = 17
    #: Build shared objects position-independent (``-fPIC``).  Turning
    #: this off produces DSOs whose XRay trampolines fault after
    #: relocation — used by tests for the paper's PIC fix (§V-B.2).
    pic: bool = True
    #: Derived base cost per statement / per flop, in virtual cycles.
    cycles_per_statement: float = 3.0
    cycles_per_flop: float = 1.0


@dataclass
class CompiledProgram:
    """Output of :meth:`Compiler.compile` — input to the linker."""

    program: SourceProgram
    config: CompilerConfig
    machine_functions: dict[str, MachineFunction] = field(default_factory=dict)
    #: Functions removed from the object code because every call site
    #: inlined them.
    inlined: set[str] = field(default_factory=set)
    #: Subset of ``inlined`` whose symbol was nevertheless retained.
    symbol_retained_inlined: set[str] = field(default_factory=set)

    def function(self, name: str) -> MachineFunction:
        return self.machine_functions[name]


class Compiler:
    """Deterministically lower a :class:`SourceProgram`."""

    def __init__(self, config: CompilerConfig | None = None):
        self.config = config or CompilerConfig()

    # -- public ---------------------------------------------------------------

    def compile(self, program: SourceProgram) -> CompiledProgram:
        program.validate()
        inlined = self._inlining_decisions(program)
        out = CompiledProgram(program=program, config=self.config, inlined=inlined)
        for fn in program.functions():
            if fn.name in inlined:
                if self._retains_symbol(fn):
                    out.symbol_retained_inlined.add(fn.name)
                continue
            out.machine_functions[fn.name] = self._lower(program, fn, inlined)
        self._xray_machine_pass(out)
        return out

    # -- inlining -------------------------------------------------------------

    def _inlining_decisions(self, program: SourceProgram) -> set[str]:
        """Pick the set of functions inlined at *all* call sites.

        A function is inlined when it is small enough, not recursive,
        not virtual, not address-taken, not the entry point, and not an
        MPI stub (those must stay interceptable).
        """
        if self.config.opt_level == 0:
            return set()
        recursive = _functions_in_cycles(program)
        decisions: set[str] = set()
        for fn in program.functions():
            if fn.name == program.entry or fn.is_mpi:
                continue
            if fn.is_virtual or fn.address_taken or fn.is_static_initializer:
                continue
            if fn.name in recursive:
                continue
            limit = (
                self.config.inline_marked_max
                if fn.inline_marked
                else self.config.auto_inline_max
            )
            if self.config.opt_level >= 3 and not fn.inline_marked:
                limit = self.config.auto_inline_max * 2
            if fn.instruction_count <= limit:
                decisions.add(fn.name)
        return decisions

    def _retains_symbol(self, fn: FunctionDef) -> bool:
        return stable_hash(fn.name) % self.config.symbol_retention_modulus == 0

    # -- lowering -------------------------------------------------------------

    def _lower(
        self, program: SourceProgram, fn: FunctionDef, inlined: set[str]
    ) -> MachineFunction:
        """Fold inlined callees (transitively) into ``fn``.

        Costs and instruction counts of inlined bodies are multiplied by
        the call-site multiplicity; the inlined body's own call sites are
        hoisted into the caller.
        """
        instructions = fn.instruction_count
        cost = fn.base_cost or (
            fn.statements * self.config.cycles_per_statement
            + fn.flops * self.config.cycles_per_flop
        )
        sites: list[MachineCallSite] = []
        # worklist of (call site, multiplicity) pairs; FIFO so the
        # lowered call-site order matches source order (MPI_Init must
        # stay ahead of the solver loop and MPI_Finalize)
        work = deque((cs, 1) for cs in fn.call_sites)
        guard = 0
        while work:
            guard += 1
            if guard > 100_000:
                raise CompilationError(
                    f"inlining explosion while lowering {fn.name!r}"
                )
            cs, mult = work.popleft()
            total = cs.calls_per_invocation * mult
            if (
                cs.kind is CallKind.DIRECT
                and cs.callee in inlined
                and cs.callee is not None
            ):
                callee = program.function(cs.callee)
                instructions += callee.instruction_count * min(total, 4)
                cost += total * (
                    callee.base_cost
                    or (
                        callee.statements * self.config.cycles_per_statement
                        + callee.flops * self.config.cycles_per_flop
                    )
                )
                work.extend((inner, total) for inner in callee.call_sites)
            else:
                sites.append(
                    MachineCallSite(
                        callee=cs.callee,
                        kind=cs.kind,
                        pointer_id=cs.pointer_id,
                        count=total,
                    )
                )
        absorbed = _absorbed_names(program, fn, inlined)
        return MachineFunction(
            name=fn.name,
            tu=program.tu_of(fn.name),
            source_path=fn.source_path,
            instruction_count=instructions,
            base_cost=cost,
            visibility=fn.visibility,
            has_symbol=True,
            is_static_initializer=fn.is_static_initializer,
            is_mpi=fn.is_mpi,
            absorbed=tuple(sorted(absorbed)),
            call_sites=sites,
        )

    # -- XRay machine pass ------------------------------------------------------

    def _xray_machine_pass(self, compiled: CompiledProgram) -> None:
        """Mark functions receiving entry/exit sleds.

        Mirrors LLVM's XRay pass: every *emitted* machine function at or
        above the instruction threshold gets sleds; there is no
        selection here — filtering is entirely a runtime decision, which
        is the whole point of the paper's workflow.
        """
        threshold = self.config.xray_instruction_threshold
        for mf in compiled.machine_functions.values():
            # MPI stubs model a pre-built library: never sled-instrumented
            # (they are measured via PMPI interception instead).
            mf.xray_instrumented = (
                not mf.is_mpi and mf.instruction_count >= threshold
            )


def _absorbed_names(
    program: SourceProgram, fn: FunctionDef, inlined: set[str]
) -> set[str]:
    """Transitive closure of inlined direct callees folded into ``fn``."""
    absorbed: set[str] = set()
    work = [
        cs.callee
        for cs in fn.call_sites
        if cs.kind is CallKind.DIRECT and cs.callee in inlined
    ]
    while work:
        name = work.pop()
        if name is None or name in absorbed:
            continue
        absorbed.add(name)
        callee = program.function(name)
        work.extend(
            cs.callee
            for cs in callee.call_sites
            if cs.kind is CallKind.DIRECT and cs.callee in inlined
        )
    return absorbed


def _functions_in_cycles(program: SourceProgram) -> set[str]:
    """Names of functions on a direct-call cycle (never inlined).

    Interns function/callee names to dense indices and runs the shared
    CSR Tarjan kernel (:func:`repro.cg.csr.tarjan_scc`) over the direct
    call edges — the one SCC implementation in the repo.  A function
    recurses when its SCC has more than one member or it calls itself
    directly; virtual/pointer dispatch is conservatively treated as
    non-inlinable anyway.
    """
    names: list[str] = []
    ids: dict[str, int] = {}

    def intern(name: str) -> int:
        nid = ids.get(name)
        if nid is None:
            nid = len(names)
            ids[name] = nid
            names.append(name)
        return nid

    sources: list[int] = []
    targets: list[int] = []
    result: set[str] = set()
    for fn in program.functions():
        caller = intern(fn.name)
        for cs in fn.call_sites:
            if cs.kind is CallKind.DIRECT and cs.callee is not None:
                callee = intern(cs.callee)
                if callee == caller:
                    result.add(fn.name)  # direct self-recursion
                sources.append(caller)
                targets.append(callee)
    if not sources:
        return result
    indptr, indices = edges_to_csr(
        len(names),
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
    )
    _, comp_members = tarjan_scc(indptr, indices, range(len(names)), len(names))
    for members in comp_members:
        if len(members) > 1:
            result.update(names[member] for member in members)
    return result
