"""Binary objects: symbol tables, sled tables, and object metadata.

A :class:`BinaryObject` stands in for an ELF executable or shared
object.  It exposes the two views DynCaPI actually consults:

* the *full* symbol table (what ``nm`` prints on the object file), and
* the *dynamic* symbol table (what the loader exposes), which omits
  hidden-visibility symbols — the source of the paper's 1,444
  unresolvable OpenFOAM functions.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import LinkError
from repro.program.ir import Visibility
from repro.program.machine import MachineFunction


class ObjectKind(enum.Enum):
    EXECUTABLE = "exec"
    SHARED_OBJECT = "dso"


@dataclass(frozen=True)
class Symbol:
    """One function symbol: name, object-relative offset, size, visibility."""

    name: str
    offset: int
    size: int
    visibility: Visibility = Visibility.DEFAULT

    @property
    def hidden(self) -> bool:
        return self.visibility is Visibility.HIDDEN


class SymbolTable:
    """Name- and offset-indexed symbol lookup.

    ``at_offset`` is on the measurement hot path (one address→name query
    per instrumentation event), so it bisects a sorted offset index that
    is rebuilt lazily after mutations.  Function extents laid out by the
    linker never overlap, so the covering symbol (if any) is always the
    one with the greatest offset at or below the query.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, Symbol] = {}
        self._offset_index: tuple[list[int], list[Symbol]] | None = None

    def add(self, symbol: Symbol) -> None:
        if symbol.name in self._by_name:
            raise LinkError(f"duplicate symbol {symbol.name!r}")
        self._by_name[symbol.name] = symbol
        self._offset_index = None

    def lookup(self, name: str) -> Symbol | None:
        return self._by_name.get(name)

    def at_offset(self, offset: int) -> Symbol | None:
        """Symbol whose ``[offset, offset+size)`` covers the address."""
        index = self._offset_index
        if index is None:
            ordered = sorted(self._by_name.values(), key=lambda s: s.offset)
            index = ([s.offset for s in ordered], ordered)
            self._offset_index = index
        offsets, ordered = index
        pos = bisect_right(offsets, offset) - 1
        if pos >= 0:
            sym = ordered[pos]
            if offset < sym.offset + sym.size:
                return sym
        return None

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


@dataclass
class BinaryObject:
    """An executable or DSO produced by the linker.

    ``sled_records`` live in :mod:`repro.xray.sled`; the object also
    carries whether its trampolines were built position-independent —
    the crux of the paper's xray-dso change.
    """

    name: str
    kind: ObjectKind
    functions: dict[str, MachineFunction] = field(default_factory=dict)
    symtab: SymbolTable = field(default_factory=SymbolTable)
    #: XRay sled table (offsets are object-relative); see xray.sled.
    sled_records: list = field(default_factory=list)
    #: Local XRay function id -> function name (ids are 1-based and
    #: assigned in layout order, unique *within* this object only).
    function_ids: dict[int, str] = field(default_factory=dict)
    pic: bool = True
    image_size: int = 0

    @property
    def is_dso(self) -> bool:
        return self.kind is ObjectKind.SHARED_OBJECT

    def dynamic_symbols(self) -> list[Symbol]:
        """Loader-visible symbols (hidden visibility filtered out)."""
        return [s for s in self.symtab if not s.hidden]

    def nm_symbols(self) -> list[Symbol]:
        """All symbols, as the ``nm`` binary utility would list them.

        This is the view DynCaPI's symbol-injection workaround uses: it
        runs ``nm`` on the on-disk object, which sees hidden symbols
        too.
        """
        return sorted(self.symtab, key=lambda s: s.offset)

    def function_id_of(self, name: str) -> int | None:
        for fid, fname in self.function_ids.items():
            if fname == name:
                return fid
        return None

    def hidden_function_names(self) -> set[str]:
        return {s.name for s in self.symtab if s.hidden}
