"""Fluent builder for :class:`~repro.program.ir.SourceProgram`.

Hand-written tests and the synthetic application generators both build
programs through this API; it keeps TU bookkeeping and call wiring terse
while funnelling everything through the IR validation.
"""

from __future__ import annotations

from typing import Iterable

from repro.program.ir import (
    CallKind,
    FunctionDef,
    SourceProgram,
    TranslationUnit,
    Visibility,
)


class ProgramBuilder:
    """Incrementally assemble a validated :class:`SourceProgram`.

    Example
    -------
    >>> b = ProgramBuilder("demo")
    >>> b.tu("main.cpp")
    >>> b.function("main", statements=5)
    >>> b.function("kernel", flops=40, loop_depth=2)
    >>> b.call("main", "kernel", count=10)
    >>> program = b.build()
    """

    def __init__(self, name: str, *, entry: str = "main"):
        self._program = SourceProgram(name=name, entry=entry)
        self._current_tu: TranslationUnit | None = None

    # -- structure ------------------------------------------------------------

    def tu(self, name: str) -> "ProgramBuilder":
        """Open (or re-open) a translation unit; new functions go here."""
        if name in self._program.translation_units:
            self._current_tu = self._program.translation_units[name]
        else:
            self._current_tu = self._program.add_tu(TranslationUnit(name))
        return self

    def library(self, lib_name: str, tu_names: Iterable[str]) -> "ProgramBuilder":
        """Link the listed TUs into a shared object instead of the exe."""
        self._program.add_library(lib_name, tu_names)
        return self

    # -- functions ------------------------------------------------------------

    def function(
        self,
        name: str,
        *,
        statements: int = 1,
        flops: int = 0,
        loop_depth: int = 0,
        inline_marked: bool = False,
        in_system_header: bool = False,
        hidden: bool = False,
        overrides: str | None = None,
        is_static_initializer: bool = False,
        address_taken: bool = False,
        base_cost: float = 0.0,
        source_path: str = "",
    ) -> FunctionDef:
        if self._current_tu is None:
            self.tu(f"{self._program.name}.cpp")
        assert self._current_tu is not None
        fn = FunctionDef(
            name=name,
            statements=statements,
            flops=flops,
            loop_depth=loop_depth,
            inline_marked=inline_marked,
            in_system_header=in_system_header,
            visibility=Visibility.HIDDEN if hidden else Visibility.DEFAULT,
            overrides=overrides,
            is_static_initializer=is_static_initializer,
            address_taken=address_taken,
            base_cost=base_cost,
            source_path=source_path,
        )
        return self._current_tu.add(fn)

    def mpi_function(self, name: str, *, base_cost: float = 50.0) -> FunctionDef:
        """Declare an MPI operation stub (``MPI_*``) in a system header."""
        return self.function(
            name,
            statements=2,
            in_system_header=True,
            base_cost=base_cost,
            source_path="/usr/include/mpi.h",
        )

    def has_function(self, name: str) -> bool:
        return name in self._program

    def function_count(self) -> int:
        return self._program.function_count()

    # -- calls ----------------------------------------------------------------

    def call(
        self,
        caller: str,
        callee: str,
        *,
        count: int = 1,
        kind: CallKind = CallKind.DIRECT,
    ) -> "ProgramBuilder":
        self._program.function(caller).add_call(
            callee, kind=kind, calls_per_invocation=count
        )
        return self

    def virtual_call(self, caller: str, base_method: str, *, count: int = 1):
        return self.call(caller, base_method, count=count, kind=CallKind.VIRTUAL)

    def pointer_call(
        self,
        caller: str,
        pointer_id: str,
        targets: Iterable[str],
        *,
        count: int = 1,
        static_resolvable: bool = True,
    ) -> "ProgramBuilder":
        if pointer_id not in self._program.pointer_targets:
            self._program.register_pointer(
                pointer_id, targets, static_resolvable=static_resolvable
            )
        self._program.function(caller).add_call(
            None,
            kind=CallKind.POINTER,
            pointer_id=pointer_id,
            calls_per_invocation=count,
        )
        return self

    def chain(self, names: Iterable[str], *, count: int = 1) -> "ProgramBuilder":
        """Wire ``a -> b -> c -> ...`` with the given per-link multiplicity."""
        names = list(names)
        for caller, callee in zip(names, names[1:]):
            self.call(caller, callee, count=count)
        return self

    # -- finish ---------------------------------------------------------------

    def build(self, *, validate: bool = True) -> SourceProgram:
        if validate:
            self._program.validate()
        return self._program
