"""Program-model substrate: IR, compiler pipeline, linker, loader, memory.

This package replaces the C++/Clang/ELF toolchain the paper operates on.
A :class:`~repro.program.ir.SourceProgram` is an explicit model of a C++
code base (translation units, functions with static metadata, call
sites).  The :mod:`~repro.program.compiler` lowers it — running the
inlining pass and the XRay sled-insertion machine pass — and the
:mod:`~repro.program.linker` produces an executable plus shared objects
with symbol tables and sled tables, mapped into a simulated process
address space (:mod:`~repro.program.memory`).
"""

from repro.program.ir import (
    CallKind,
    CallSite,
    FunctionDef,
    SourceProgram,
    TranslationUnit,
    Visibility,
)
from repro.program.builder import ProgramBuilder
from repro.program.compiler import Compiler, CompilerConfig
from repro.program.linker import Linker, LinkedProgram
from repro.program.binary import BinaryObject, Symbol, SymbolTable
from repro.program.memory import ProcessImage
from repro.program.loader import DynamicLoader

__all__ = [
    "BinaryObject",
    "CallKind",
    "CallSite",
    "Compiler",
    "CompilerConfig",
    "DynamicLoader",
    "FunctionDef",
    "LinkedProgram",
    "Linker",
    "ProcessImage",
    "ProgramBuilder",
    "SourceProgram",
    "Symbol",
    "SymbolTable",
    "TranslationUnit",
    "Visibility",
]
