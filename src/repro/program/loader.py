"""Dynamic loader: map linked objects into a process image.

Models the parts of ``ld.so`` the paper's xray-dso extension interacts
with: base-address assignment (DSOs are relocated away from their
preferred base), ``dlopen``/``dlclose`` for runtime (un)loading, and the
writing of sled NOP bytes into the mapped text so patching operates on
real page-protected memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoaderError
from repro.program.binary import BinaryObject
from repro.program.linker import LinkedProgram
from repro.program.memory import MappedRegion, ProcessImage
from repro.xray.sled import SLED_BYTES, UNPATCHED


@dataclass
class LoadedObject:
    """A binary object mapped at a concrete base address."""

    binary: BinaryObject
    region: MappedRegion

    @property
    def base(self) -> int:
        return self.region.base

    @property
    def relocated(self) -> bool:
        """True when the object was not mapped at its preferred base.

        Executables are linked non-PIC at a fixed address; DSOs are
        always relocated, which is why their trampolines must be
        position independent (paper §V-B.2).
        """
        return self.binary.is_dso

    def address_of(self, object_offset: int) -> int:
        return self.base + object_offset

    def sled_address(self, record) -> int:
        return self.base + record.offset


@dataclass
class DynamicLoader:
    """Maps objects into a :class:`ProcessImage` and tracks liveness."""

    image: ProcessImage = field(default_factory=ProcessImage)
    loaded: dict[str, LoadedObject] = field(default_factory=dict)

    def load(self, binary: BinaryObject) -> LoadedObject:
        if binary.name in self.loaded:
            raise LoaderError(f"object {binary.name!r} already loaded")
        region = self.image.map_region(binary.name, binary.image_size)
        lo = LoadedObject(binary=binary, region=region)
        self._write_sleds(lo)
        self.loaded[binary.name] = lo
        return lo

    def dlopen(self, binary: BinaryObject) -> LoadedObject:
        """Runtime loading of a DSO (identical mapping path)."""
        if not binary.is_dso:
            raise LoaderError("dlopen target must be a shared object")
        return self.load(binary)

    def dlclose(self, name: str) -> None:
        lo = self.loaded.pop(name, None)
        if lo is None:
            raise LoaderError(f"object {name!r} is not loaded")
        self.image.unmap(lo.region)

    def load_program(self, linked: LinkedProgram) -> list[LoadedObject]:
        """Map the executable and all link-time DSO dependencies."""
        objs = [self.load(linked.executable)]
        objs.extend(self.load(dso) for dso in linked.dsos)
        return objs

    def object_containing(self, address: int) -> LoadedObject:
        for lo in self.loaded.values():
            if lo.region.contains(address):
                return lo
        raise LoaderError(f"no loaded object contains address {address:#x}")

    # -- internals ------------------------------------------------------------

    def _write_sleds(self, lo: LoadedObject) -> None:
        """Initialise every sled with NOP bytes in the mapped text.

        The loader writes the image before protection is dropped to
        read-only/execute, so it bypasses the patching protection path.
        """
        for record in lo.binary.sled_records:
            addr = lo.sled_address(record)
            self.image.mprotect(addr, SLED_BYTES, writable=True)
            self.image.write(addr, UNPATCHED)
            self.image.mprotect(addr, SLED_BYTES, writable=False)
