"""Sled patching: the runtime byte-rewriting machinery.

Patching follows the exact sequence the paper describes (§V-A): first
``mprotect`` flips the sled's pages to copy-on-write writable, then the
NOP sequence is replaced by the jump encoding, then protection is
restored.  Unpatching restores the NOPs.  All byte traffic goes through
the page-protected memory model, so a missing ``mprotect`` faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import PatchingError, SegmentationFault
from repro.xray.sled import (
    SLED_BYTES,
    UNPATCHED,
    decode_patch,
    encode_patch,
)


class Memory(Protocol):
    """The slice of the process-image API patching needs."""

    def read(self, address: int, length: int) -> bytes: ...

    def write(self, address: int, payload: bytes) -> None: ...

    def mprotect(self, start: int, length: int, *, writable: bool) -> None: ...


@dataclass
class PatchStats:
    """Counters feeding the Tinit cost model."""

    patched: int = 0
    unpatched: int = 0
    mprotect_calls: int = 0


@dataclass
class SledPatcher:
    """Patch/unpatch individual sleds in a process image."""

    memory: Memory
    stats: PatchStats = field(default_factory=PatchStats)

    def patch(self, address: int, function_id: int, trampoline_id: int) -> None:
        """Overwrite the NOP sled at ``address`` with a trampoline jump."""
        current = self._read_sled(address)
        if decode_patch(current) is not None:
            raise PatchingError(f"sled at {address:#x} is already patched")
        self._protected_write(address, encode_patch(function_id, trampoline_id))
        self.stats.patched += 1

    def unpatch(self, address: int) -> None:
        """Restore the original NOP sequence."""
        current = self._read_sled(address)
        if decode_patch(current) is None:
            raise PatchingError(f"sled at {address:#x} is not patched")
        self._protected_write(address, UNPATCHED)
        self.stats.unpatched += 1

    def read_sled(self, address: int) -> tuple[int, int] | None:
        """Decoded (function id, trampoline id), or ``None`` if unpatched."""
        return decode_patch(self._read_sled(address))

    # -- internals ------------------------------------------------------------

    def _read_sled(self, address: int) -> bytes:
        try:
            return self.memory.read(address, SLED_BYTES)
        except SegmentationFault as exc:
            raise PatchingError(f"sled read failed: {exc}") from exc

    def _protected_write(self, address: int, payload: bytes) -> None:
        """The mprotect → write → mprotect dance from the paper."""
        self.memory.mprotect(address, SLED_BYTES, writable=True)
        self.stats.mprotect_calls += 1
        try:
            self.memory.write(address, payload)
        finally:
            self.memory.mprotect(address, SLED_BYTES, writable=False)
            self.stats.mprotect_calls += 1
