"""XRay substrate: sleds, packed ids, trampolines, patching, runtimes.

Models LLVM's XRay instrumentation feature plus the paper's extension
for dynamic shared objects: packed 8/24-bit ids (:mod:`ids`), per-object
sled tables (:mod:`sled`), position-independent trampolines
(:mod:`trampoline`), ``mprotect``-guarded patching (:mod:`patching`),
the main runtime (:mod:`runtime`) and the per-DSO registration library
(:mod:`dso`).
"""

from repro.xray.ids import (
    MAIN_EXECUTABLE_OBJECT_ID,
    MAX_DSOS,
    MAX_FUNCTION_ID,
    MAX_OBJECT_ID,
    PackedId,
)
from repro.xray.sled import SLED_BYTES, SledKind, SledRecord
from repro.xray.trampoline import EventType, Handler, Trampoline, TrampolineTable
from repro.xray.patching import PatchStats, SledPatcher
from repro.xray.runtime import RegisteredObject, XRayRuntime
from repro.xray.dso import XRayDsoRuntime
from repro.xray.modes import AccountingMode, BasicMode, FunctionAccount, TraceRecord

__all__ = [
    "AccountingMode",
    "BasicMode",
    "EventType",
    "FunctionAccount",
    "TraceRecord",
    "Handler",
    "MAIN_EXECUTABLE_OBJECT_ID",
    "MAX_DSOS",
    "MAX_FUNCTION_ID",
    "MAX_OBJECT_ID",
    "PackedId",
    "PatchStats",
    "RegisteredObject",
    "SLED_BYTES",
    "SledKind",
    "SledPatcher",
    "SledRecord",
    "Trampoline",
    "TrampolineTable",
    "XRayDsoRuntime",
    "XRayRuntime",
]
