"""Packed object/function ids — the paper's Fig. 4.

The original XRay identified functions by a 32-bit id unique to the main
executable.  To support DSOs, the id space is split: the top 8 bits hold
an object id (0 = main executable, 1..255 = registered DSOs) and the low
24 bits the object-local function id.  The packed id of a main-
executable function therefore equals its plain function id, which keeps
the extended runtime backwards compatible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PackedIdError

OBJECT_BITS = 8
FUNCTION_BITS = 24

#: Object id of the main executable.
MAIN_EXECUTABLE_OBJECT_ID = 0

#: Ids 1..255 are available for DSOs — "allowing the registration of up
#: to 255 DSOs" (paper §V-B.1).
MAX_OBJECT_ID = (1 << OBJECT_BITS) - 1
MAX_DSOS = MAX_OBJECT_ID

#: "This reduces the upper limit of potentially instrumented functions
#: to ~16.7 million" — per object.
MAX_FUNCTION_ID = (1 << FUNCTION_BITS) - 1


@dataclass(frozen=True)
class PackedId:
    """An (object id, function id) pair with its 32-bit packed encoding."""

    object_id: int
    function_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.object_id <= MAX_OBJECT_ID:
            raise PackedIdError(
                f"object id {self.object_id} outside [0, {MAX_OBJECT_ID}]"
            )
        if not 0 <= self.function_id <= MAX_FUNCTION_ID:
            raise PackedIdError(
                f"function id {self.function_id} outside [0, {MAX_FUNCTION_ID}]"
            )

    def pack(self) -> int:
        return (self.object_id << FUNCTION_BITS) | self.function_id

    @classmethod
    def unpack(cls, value: int) -> "PackedId":
        if not 0 <= value < (1 << (OBJECT_BITS + FUNCTION_BITS)):
            raise PackedIdError(f"packed id {value:#x} does not fit in 32 bits")
        return cls(value >> FUNCTION_BITS, value & MAX_FUNCTION_ID)

    @property
    def is_main_executable(self) -> bool:
        return self.object_id == MAIN_EXECUTABLE_OBJECT_ID

    def __int__(self) -> int:
        return self.pack()

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"obj{self.object_id}:fn{self.function_id}"
