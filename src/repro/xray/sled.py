"""XRay sleds: placeholder NOP regions and their byte-level encoding.

At compile time the XRay machine pass reserves ``SLED_BYTES`` of NOPs at
each function entry and exit.  At runtime, patching overwrites the NOPs
with a jump to a trampoline, encoding the sled's function id.  We model
the bytes literally so tests can assert that patch→unpatch restores the
original image and that writes without ``mprotect`` fault.

This module is intentionally import-light (no dependency on the program
package) because both the linker and the XRay runtime need it.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

#: Size of one sled in bytes.  Real x86-64 XRay reserves 11 bytes (a
#: 2-byte short jump + 9 bytes of NOP); we round up to 12 so the patched
#: encoding below packs evenly.
SLED_BYTES = 12

#: The unpatched sled content: architecture NOPs.
NOP = 0x90
UNPATCHED = bytes([NOP]) * SLED_BYTES

#: Patched sled magic (stands in for `mov r10d, <id>; call <trampoline>`).
PATCH_MAGIC = 0xE9


class SledKind(enum.Enum):
    ENTRY = 0
    EXIT = 1
    #: Tail-call exits exist in real XRay; modelled for completeness.
    TAIL_EXIT = 2


@dataclass(frozen=True)
class SledRecord:
    """One entry of an object's XRay sled table (``xray_instr_map``).

    ``offset`` is object-relative; the loader adds the object's base
    address.  ``function_id`` is the object-local 1-based id.
    """

    offset: int
    kind: SledKind
    function_name: str
    function_id: int


def encode_patch(function_id: int, trampoline_id: int) -> bytes:
    """The byte sequence written into a patched sled.

    Layout: magic byte, sled kind padding byte, u32 function id,
    u32 trampoline id, 2 NOP pad bytes == 12 bytes total.
    """
    return (
        struct.pack("<BBII", PATCH_MAGIC, 0, function_id, trampoline_id)
        + bytes([NOP, NOP])
    )


def decode_patch(blob: bytes) -> tuple[int, int] | None:
    """Inverse of :func:`encode_patch`; ``None`` if the sled is unpatched."""
    if len(blob) != SLED_BYTES:
        raise ValueError(f"sled blob must be {SLED_BYTES} bytes, got {len(blob)}")
    if blob == UNPATCHED:
        return None
    magic, _pad, function_id, trampoline_id = struct.unpack("<BBII", blob[:10])
    if magic != PATCH_MAGIC:
        raise ValueError("corrupt sled content")
    return function_id, trampoline_id


def is_patched(blob: bytes) -> bool:
    return decode_patch(blob) is not None
