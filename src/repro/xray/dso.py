"""The ``xray-dso`` runtime library (paper §V-B.2).

Each instrumented DSO links a small runtime that, when the object is
loaded, collects the DSO's sled table and hands it — together with the
DSO's *local, position-independent* trampolines — to the main XRay
runtime's registration API.  On ``dlclose`` the object deregisters.

The local trampoline definitions are functionally identical to the main
executable's, but address the handler symbol GOT-relative (``-fPIC``);
a DSO built without PIC gets non-PIC trampolines, which fault on first
use after relocation — reproducing why the paper had to change the x86
trampoline implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ObjectRegistrationError
from repro.xray.runtime import XRayRuntime

if TYPE_CHECKING:  # avoid a cycle: program.linker imports xray.sled
    from repro.program.loader import LoadedObject


@dataclass
class XRayDsoRuntime:
    """Registration glue linked into every instrumented DSO."""

    main_runtime: XRayRuntime
    #: DSO name -> assigned object id, for deregistration.
    _registered: dict[str, int] = field(default_factory=dict)

    def on_load(self, loaded: "LoadedObject") -> int:
        """DSO constructor: collect sled data and register.

        Returns the object id assigned by the main runtime.
        """
        binary = loaded.binary
        if not binary.is_dso:
            raise ObjectRegistrationError(
                f"xray-dso runtime linked into non-DSO {binary.name!r}"
            )
        trampolines = self.main_runtime.trampolines.create_pair(
            binary.name, pic=binary.pic
        )
        object_id = self.main_runtime.register_dso(
            name=binary.name,
            base=loaded.base,
            sled_records=list(binary.sled_records),
            function_names=dict(binary.function_ids),
            trampolines=trampolines,
        )
        self._registered[binary.name] = object_id
        return object_id

    def on_unload(self, name: str) -> None:
        """DSO destructor: deregister from the main runtime."""
        object_id = self._registered.pop(name, None)
        if object_id is None:
            raise ObjectRegistrationError(f"DSO {name!r} was never registered")
        self.main_runtime.deregister_object(object_id)

    def object_id_of(self, name: str) -> int:
        return self._registered[name]
