"""XRay's pre-existing operation modes (paper §V-A).

"XRay provides a few different pre-existing modes, each defining their
own handler functions."  The two that matter in practice are modelled:

* **basic mode** (``xray-basic``): append every entry/exit event to an
  in-memory trace log, flushed to a file at exit — the raw material for
  the ``llvm-xray`` tooling.
* **accounting mode** (an ``llvm-xray account``-style aggregation):
  per-function call counts and inclusive latency, computed online from
  a shadow stack.

Both are ordinary handlers installed via ``__xray_set_handler``
(:meth:`~repro.xray.runtime.XRayRuntime.set_handler`), so they compose
with DynCaPI-selected patching as well as full patching.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

from repro.xray.ids import PackedId
from repro.xray.trampoline import EventType


class _Clock(Protocol):
    """The slice of the virtual clock the modes need.

    Structural typing avoids importing :mod:`repro.execution` (which
    depends on the program package, which depends on this package).
    """

    def now(self) -> float: ...


@dataclass(frozen=True)
class TraceRecord:
    """One basic-mode log record (function id, event type, timestamp)."""

    packed_id: int
    event: str
    timestamp_cycles: float


@dataclass
class BasicMode:
    """``xray-basic``: buffered event logging.

    ``buffer_size`` bounds memory like the real ring buffers; when the
    buffer is full the oldest records are dropped and counted.
    """

    clock: _Clock
    buffer_size: int = 65536
    records: list[TraceRecord] = field(default_factory=list)
    dropped: int = 0

    def handler(self, packed: PackedId, event: EventType) -> None:
        if len(self.records) >= self.buffer_size:
            self.records.pop(0)
            self.dropped += 1
        self.records.append(
            TraceRecord(packed.pack(), event.value, self.clock.now())
        )

    def flush(self, path: str | Path) -> int:
        """Write the log as JSON lines; returns the record count."""
        with open(path, "w") as fh:
            for rec in self.records:
                fh.write(
                    json.dumps(
                        {
                            "id": rec.packed_id,
                            "event": rec.event,
                            "t": rec.timestamp_cycles,
                        }
                    )
                    + "\n"
                )
        return len(self.records)

    @classmethod
    def load(cls, path: str | Path) -> list[TraceRecord]:
        records = []
        for line in Path(path).read_text().splitlines():
            data = json.loads(line)
            records.append(TraceRecord(data["id"], data["event"], data["t"]))
        return records


@dataclass
class FunctionAccount:
    """Aggregated latency statistics of one function."""

    packed_id: int
    count: int = 0
    total_cycles: float = 0.0
    min_cycles: float = float("inf")
    max_cycles: float = 0.0

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / self.count if self.count else 0.0


@dataclass
class AccountingMode:
    """``llvm-xray account``-style online latency accounting.

    Maintains a shadow stack of (packed id, entry timestamp); on exit
    the inclusive latency is attributed to the function.  Unbalanced
    exits (tail calls cut short by the depth cap) are tolerated and
    counted.
    """

    clock: _Clock
    accounts: dict[int, FunctionAccount] = field(default_factory=dict)
    unbalanced: int = 0
    _stack: list[tuple[int, float]] = field(default_factory=list)

    def handler(self, packed: PackedId, event: EventType) -> None:
        key = packed.pack()
        if event is EventType.ENTRY:
            self._stack.append((key, self.clock.now()))
            return
        if not self._stack or self._stack[-1][0] != key:
            self.unbalanced += 1
            return
        _, entered = self._stack.pop()
        account = self.accounts.setdefault(key, FunctionAccount(key))
        latency = self.clock.now() - entered
        account.count += 1
        account.total_cycles += latency
        account.min_cycles = min(account.min_cycles, latency)
        account.max_cycles = max(account.max_cycles, latency)

    def top(self, n: int = 10) -> list[FunctionAccount]:
        """Hottest functions by total inclusive latency."""
        return sorted(
            self.accounts.values(), key=lambda a: -a.total_cycles
        )[:n]

    def report(self, resolve=None) -> str:
        """llvm-xray-account style text table.

        ``resolve`` optionally maps a packed id to a display name.
        """
        lines = ["funcid  count  total(cyc)     mean(cyc)   name"]
        for acc in self.top(50):
            name = resolve(PackedId.unpack(acc.packed_id)) if resolve else ""
            lines.append(
                f"{acc.packed_id:>6}  {acc.count:>5}  "
                f"{acc.total_cycles:>12.0f}  {acc.mean_cycles:>10.1f}   {name or ''}"
            )
        return "\n".join(lines)
