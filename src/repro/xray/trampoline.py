"""XRay trampolines, including the position-independence fix for DSOs.

A patched sled jumps to a trampoline that saves registers and calls the
installed event handler.  The trampolines linked into a DSO must address
the handler symbol relative to the global offset table (``-fPIC``
style): a DSO is mapped at an arbitrary base, so the absolute-address
load used in the main executable's trampolines would dereference
garbage after relocation.  We model that failure explicitly: invoking a
non-PIC trampoline from a relocated object raises
:class:`~repro.errors.TrampolineRelocationError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TrampolineRelocationError
from repro.xray.ids import PackedId


class EventType(enum.Enum):
    """XRay event handler event types (``XRayEntryType``)."""

    ENTRY = "entry"
    EXIT = "exit"
    TAIL = "tail"


#: Signature of an installed XRay event handler: ``handler(packed_id,
#: event_type)`` — mirroring ``void (*)(int32_t, XRayEntryType)``.
Handler = Callable[[PackedId, EventType], None]


@dataclass
class Trampoline:
    """One trampoline function linked into an object.

    ``pic`` records how the handler symbol is addressed: via the GOT
    (position-independent) or absolutely.
    """

    trampoline_id: int
    object_name: str
    event_type: EventType
    pic: bool

    def invoke(
        self,
        handler: Handler | None,
        packed_id: PackedId,
        *,
        relocated: bool,
    ) -> None:
        """Dispatch a sled event through this trampoline.

        ``relocated`` is true when the containing object was mapped away
        from its preferred base (always true for DSOs).
        """
        if relocated and not self.pic:
            raise TrampolineRelocationError(
                f"non-PIC trampoline {self.trampoline_id} of "
                f"{self.object_name!r} invoked after relocation; rebuild "
                f"the DSO with -fPIC (GOT-relative handler addressing)"
            )
        if handler is not None:
            handler(packed_id, self.event_type)


@dataclass
class TrampolineTable:
    """Process-wide registry mapping trampoline ids to trampolines.

    Each registered object contributes a local (entry, exit) pair; the
    patcher encodes the pair's ids into that object's sleds so events
    always route through the object's *own* trampolines, as required for
    DSOs (paper §V-B.2).
    """

    _table: dict[int, Trampoline] = field(default_factory=dict)
    _next_id: int = 0

    def create_pair(self, object_name: str, *, pic: bool) -> tuple[Trampoline, Trampoline]:
        entry = Trampoline(self._next_id, object_name, EventType.ENTRY, pic)
        exit_ = Trampoline(self._next_id + 1, object_name, EventType.EXIT, pic)
        self._table[entry.trampoline_id] = entry
        self._table[exit_.trampoline_id] = exit_
        self._next_id += 2
        return entry, exit_

    def remove_object(self, object_name: str) -> None:
        for tid in [t.trampoline_id for t in self._table.values() if t.object_name == object_name]:
            del self._table[tid]

    def get(self, trampoline_id: int) -> Trampoline:
        return self._table[trampoline_id]

    def __len__(self) -> int:
        return len(self._table)
