"""The XRay runtime (``xray-rt``) with the paper's multi-object extension.

Responsibilities, mirroring ``compiler-rt``'s XRay runtime plus the
paper's additions:

* resolve sled addresses of the main executable at startup,
* let :mod:`repro.xray.dso` register/deregister DSO sled tables with
  their object-local trampolines,
* hand out packed ids (Fig. 4) and translate between ids, names and
  addresses (``__xray_function_address`` analogue),
* patch/unpatch sleds individually, per object, or globally, and
* route sled events through the containing object's trampolines to the
  installed handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ObjectRegistrationError, PatchingError, XRayError
from repro.xray.ids import (
    MAIN_EXECUTABLE_OBJECT_ID,
    MAX_FUNCTION_ID,
    MAX_OBJECT_ID,
    PackedId,
)
from repro.xray.patching import Memory, SledPatcher
from repro.xray.sled import SledKind, SledRecord
from repro.xray.trampoline import (
    EventType,
    Handler,
    Trampoline,
    TrampolineTable,
)


@dataclass
class SledEntry:
    """One sled resolved to its absolute address."""

    record: SledRecord
    address: int


@dataclass
class RegisteredObject:
    """Bookkeeping for one patchable object known to the runtime."""

    object_id: int
    name: str
    base: int
    relocated: bool
    sleds: list[SledEntry]
    entry_trampoline: Trampoline
    exit_trampoline: Trampoline
    #: object-local function id -> name (from the object's id table)
    function_names: dict[int, str]
    #: object-local function id -> absolute entry address
    function_addresses: dict[int, int] = field(default_factory=dict)
    #: object-local function id -> its sleds (patch/is_patched hot path)
    _sleds_by_fid: dict[int, list[SledEntry]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        for sled in self.sleds:
            self._sleds_by_fid.setdefault(sled.record.function_id, []).append(sled)
            if sled.record.kind is SledKind.ENTRY:
                self.function_addresses[sled.record.function_id] = sled.address

    def sleds_of(self, function_id: int) -> list[SledEntry]:
        return self._sleds_by_fid.get(function_id, [])


class XRayRuntime:
    """Process-wide XRay state: objects, trampolines, handler, patcher."""

    def __init__(self, memory: Memory):
        self.patcher = SledPatcher(memory)
        self.trampolines = TrampolineTable()
        self._objects: dict[int, RegisteredObject] = {}
        self._object_ids_by_name: dict[str, int] = {}
        self._handler: Handler | None = None
        self._next_dso_id = 1
        #: address -> (object id, sled) reverse index for event dispatch
        self._sled_index: dict[int, tuple[int, SledEntry]] = {}

    # -- object registration (the paper's new API surface) ---------------------

    def init_main_executable(
        self,
        name: str,
        base: int,
        sled_records: list[SledRecord],
        function_names: dict[int, str],
    ) -> RegisteredObject:
        """Startup registration of the executable; always object id 0.

        Keeping the executable at object id 0 makes its packed ids equal
        its plain function ids — the backwards-compatibility property
        the paper calls out.
        """
        if MAIN_EXECUTABLE_OBJECT_ID in self._objects:
            raise ObjectRegistrationError("main executable already initialised")
        entry, exit_ = self.trampolines.create_pair(name, pic=False)
        return self._register(
            MAIN_EXECUTABLE_OBJECT_ID,
            name,
            base,
            relocated=False,
            sled_records=sled_records,
            function_names=function_names,
            trampolines=(entry, exit_),
        )

    def register_dso(
        self,
        name: str,
        base: int,
        sled_records: list[SledRecord],
        function_names: dict[int, str],
        trampolines: tuple[Trampoline, Trampoline],
    ) -> int:
        """Register a loaded DSO; returns its assigned object id (1..255)."""
        if name in self._object_ids_by_name:
            raise ObjectRegistrationError(f"object {name!r} already registered")
        if self._next_dso_id > MAX_OBJECT_ID:
            raise ObjectRegistrationError(
                f"cannot register more than {MAX_OBJECT_ID} DSOs "
                f"(8-bit object id exhausted)"
            )
        object_id = self._next_dso_id
        self._next_dso_id += 1
        self._register(
            object_id,
            name,
            base,
            relocated=True,
            sled_records=sled_records,
            function_names=function_names,
            trampolines=trampolines,
        )
        return object_id

    def deregister_object(self, object_id: int) -> None:
        """Remove a DSO on ``dlclose``; its sleds become unknown."""
        if object_id == MAIN_EXECUTABLE_OBJECT_ID:
            raise ObjectRegistrationError("cannot deregister the main executable")
        obj = self._objects.pop(object_id, None)
        if obj is None:
            raise ObjectRegistrationError(f"object id {object_id} is not registered")
        del self._object_ids_by_name[obj.name]
        self.trampolines.remove_object(obj.name)
        for sled in obj.sleds:
            self._sled_index.pop(sled.address, None)

    def _register(
        self,
        object_id: int,
        name: str,
        base: int,
        *,
        relocated: bool,
        sled_records: list[SledRecord],
        function_names: dict[int, str],
        trampolines: tuple[Trampoline, Trampoline],
    ) -> RegisteredObject:
        for fid in function_names:
            if fid > MAX_FUNCTION_ID:
                raise ObjectRegistrationError(
                    f"function id {fid} in {name!r} exceeds 24-bit limit"
                )
        sleds = [SledEntry(rec, base + rec.offset) for rec in sled_records]
        obj = RegisteredObject(
            object_id=object_id,
            name=name,
            base=base,
            relocated=relocated,
            sleds=sleds,
            entry_trampoline=trampolines[0],
            exit_trampoline=trampolines[1],
            function_names=dict(function_names),
        )
        self._objects[object_id] = obj
        self._object_ids_by_name[name] = object_id
        for sled in sleds:
            self._sled_index[sled.address] = (object_id, sled)
        return obj

    # -- queries ----------------------------------------------------------------

    def objects(self) -> Iterator[RegisteredObject]:
        return iter(self._objects.values())

    def object(self, object_id: int) -> RegisteredObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise XRayError(f"unknown object id {object_id}") from None

    def object_id_of(self, name: str) -> int:
        try:
            return self._object_ids_by_name[name]
        except KeyError:
            raise XRayError(f"object {name!r} is not registered") from None

    def function_address(self, packed: PackedId) -> int:
        """``__xray_function_address`` for packed ids.

        DynCaPI cross-checks this against its nm-derived symbol map to
        translate function ids to names.
        """
        obj = self.object(packed.object_id)
        try:
            return obj.function_addresses[packed.function_id]
        except KeyError:
            raise XRayError(
                f"object {obj.name!r} has no function id {packed.function_id}"
            ) from None

    def function_name(self, packed: PackedId) -> str | None:
        """Name from the object's id table (None for unknown ids)."""
        obj = self.object(packed.object_id)
        return obj.function_names.get(packed.function_id)

    def packed_ids(self) -> list[PackedId]:
        """All patchable functions across all registered objects."""
        out = []
        for obj in self._objects.values():
            out.extend(PackedId(obj.object_id, fid) for fid in sorted(obj.function_names))
        return out

    # -- handler ------------------------------------------------------------------

    def set_handler(self, handler: Handler | None) -> None:
        """``__xray_set_handler``: install/remove the event handler."""
        self._handler = handler

    @property
    def handler(self) -> Handler | None:
        return self._handler

    # -- patching -------------------------------------------------------------------

    def patch_function(self, packed: PackedId) -> int:
        """Patch all sleds of one function; returns the sled count."""
        obj = self.object(packed.object_id)
        sleds = obj.sleds_of(packed.function_id)
        if not sleds:
            raise PatchingError(
                f"function id {packed.function_id} of {obj.name!r} has no sleds"
            )
        for sled in sleds:
            tramp = (
                obj.entry_trampoline
                if sled.record.kind is SledKind.ENTRY
                else obj.exit_trampoline
            )
            self.patcher.patch(sled.address, packed.pack(), tramp.trampoline_id)
        return len(sleds)

    def unpatch_function(self, packed: PackedId) -> int:
        obj = self.object(packed.object_id)
        sleds = obj.sleds_of(packed.function_id)
        for sled in sleds:
            self.patcher.unpatch(sled.address)
        return len(sleds)

    def patch_object(self, object_id: int) -> int:
        """Patch every sled of one object (per-object startup patching)."""
        obj = self.object(object_id)
        count = 0
        for fid in sorted(obj.function_names):
            count += self.patch_function(PackedId(object_id, fid))
        return count

    def patch_all(self) -> int:
        """The legacy "patch everything at startup" mode."""
        return sum(self.patch_object(oid) for oid in sorted(self._objects))

    def unpatch_all(self) -> int:
        """Restore NOPs everywhere; idempotent like ``__xray_unpatch``."""
        count = 0
        for oid, obj in sorted(self._objects.items()):
            for fid in sorted(obj.function_names):
                packed = PackedId(oid, fid)
                if self.is_patched(packed):
                    count += self.unpatch_function(packed)
        return count

    def is_patched(self, packed: PackedId) -> bool:
        obj = self.object(packed.object_id)
        sleds = obj.sleds_of(packed.function_id)
        return bool(sleds) and all(
            self.patcher.read_sled(s.address) is not None for s in sleds
        )

    def patched_count(self) -> int:
        return sum(1 for pid in self.packed_ids() if self.is_patched(pid))

    # -- event dispatch ----------------------------------------------------------------

    def fire_sled(self, address: int) -> bool:
        """Execute the sled at ``address``.

        Called by the execution engine whenever control flow passes an
        instrumentation point.  Reads the actual sled bytes: an
        unpatched sled is a NOP (returns False); a patched sled routes
        through its trampoline to the handler (returns True).
        """
        decoded = self.patcher.read_sled(address)
        if decoded is None:
            return False
        packed_value, trampoline_id = decoded
        entry = self._sled_index.get(address)
        if entry is None:
            raise XRayError(f"patched sled at {address:#x} belongs to no object")
        object_id, _sled = entry
        obj = self._objects[object_id]
        trampoline = self.trampolines.get(trampoline_id)
        trampoline.invoke(
            self._handler, PackedId.unpack(packed_value), relocated=obj.relocated
        )
        return True
