"""CaPI — the paper's primary contribution.

Selection DSL (:mod:`spec`), selector pipeline (:mod:`selectors`,
:mod:`pipeline`), instrumentation configurations (:mod:`ic`), the
coarse selector (:mod:`selectors.coarse`), inlining compensation
(:mod:`inlining`), the legacy static workflow (:mod:`static_inst`) and
the high-level driver (:mod:`capi`).
"""

from repro.core.capi import Capi, CapiOutcome
from repro.core.ic import IC_ENV_VAR, ICProvenance, InstrumentationConfig
from repro.core.inlining import CompensationResult, compensate_inlining
from repro.core.pipeline import (
    PipelineBuilder,
    SelectionResult,
    evaluate_pipeline,
    run_spec,
)
from repro.core.refinement import PiraRefiner, RefinementResult, RefinementStep
from repro.core.static_inst import StaticBuild, StaticInstrumenter

__all__ = [
    "PiraRefiner",
    "RefinementResult",
    "RefinementStep",
    "Capi",
    "CapiOutcome",
    "CompensationResult",
    "IC_ENV_VAR",
    "ICProvenance",
    "InstrumentationConfig",
    "PipelineBuilder",
    "SelectionResult",
    "StaticBuild",
    "StaticInstrumenter",
    "compensate_inlining",
    "evaluate_pipeline",
    "run_spec",
]
