"""PIRA-style automatic instrumentation refinement (paper §II-B).

"PIRA improves the selection by incrementally running the application
and using the collected profiling information."  This module closes the
paper's Fig. 1 loop automatically on top of the *dynamic* workflow: each
iteration runs the instrumented application, scores the profile, and
produces the next IC by

* **excluding** regions whose estimated measurement overhead dominates
  their useful time (scorep-score logic), and
* optionally **expanding** into callees of hot regions that are not yet
  instrumented (hotspot drill-down), bounded by the call graph.

Because re-patching replaces recompilation, a whole refinement session
costs seconds of virtual time — the usability claim of §VII-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cg.graph import CallGraph
from repro.core.ic import InstrumentationConfig
from repro.execution.workload import Workload
from repro.scorep.regions import flatten
from repro.scorep.score_tool import score_profile

if TYPE_CHECKING:  # workflow imports core.ic; import lazily to avoid a cycle
    from repro.workflow import BuiltApp


@dataclass
class RefinementStep:
    """Record of one refinement iteration."""

    iteration: int
    ic_size: int
    t_total: float
    t_init: float
    excluded: list[str] = field(default_factory=list)
    expanded: list[str] = field(default_factory=list)


@dataclass
class RefinementResult:
    ic: InstrumentationConfig
    steps: list[RefinementStep]
    converged: bool

    @property
    def total_turnaround_seconds(self) -> float:
        """Virtual cost of all measurement+adjustment iterations."""
        return sum(s.t_total for s in self.steps)


@dataclass
class PiraRefiner:
    """Iterative measure → score → adjust loop over the dynamic workflow."""

    app: "BuiltApp"
    graph: CallGraph
    #: exclude regions whose overhead/runtime ratio exceeds this
    max_overhead_ratio: float = 0.3
    #: expand into callees of regions holding at least this share of
    #: total inclusive time (0 disables expansion)
    hotspot_share: float = 0.2
    max_new_per_iteration: int = 50
    workload: Workload = field(default_factory=lambda: Workload(site_cap=2, event_budget=100_000))

    def refine(
        self,
        initial_ic: InstrumentationConfig,
        *,
        iterations: int = 4,
        tool: str = "scorep",
    ) -> RefinementResult:
        from repro.workflow import run_app  # deferred: avoids import cycle

        ic = initial_ic
        steps: list[RefinementStep] = []
        converged = False
        patchable = self.app.linked.patchable_function_names()
        for i in range(iterations):
            outcome = run_app(
                self.app,
                mode="ic",
                ic=ic,
                tool=tool,  # type: ignore[arg-type]
                workload=self.workload,
                config_name=f"refine-{i}",
            )
            flat = flatten(outcome.scorep_profile)
            excluded = self._select_exclusions(flat)
            expanded = self._select_expansions(flat, ic, patchable)
            steps.append(
                RefinementStep(
                    iteration=i,
                    ic_size=len(ic),
                    t_total=outcome.result.t_total,
                    t_init=outcome.result.t_init,
                    excluded=sorted(excluded),
                    expanded=sorted(expanded),
                )
            )
            if not excluded and not expanded:
                converged = True
                break
            ic = InstrumentationConfig(
                functions=frozenset((ic.functions - excluded) | expanded),
                provenance=ic.provenance,
            )
        return RefinementResult(ic=ic, steps=steps, converged=converged)

    # -- policies ---------------------------------------------------------------

    def _select_exclusions(self, flat) -> set[str]:
        out = set()
        for entry in score_profile(flat):
            if entry.overhead_ratio > self.max_overhead_ratio:
                out.add(entry.name)
            if len(out) >= self.max_new_per_iteration:
                break
        return out

    def _select_expansions(
        self, flat, ic: InstrumentationConfig, patchable: set[str]
    ) -> set[str]:
        if self.hotspot_share <= 0:
            return set()
        total = sum(r.inclusive_cycles for r in flat.values()) or 1.0
        out: set[str] = set()
        for region in flat.values():
            if region.inclusive_cycles / total < self.hotspot_share:
                continue
            if region.name not in self.graph:
                continue
            for callee in self.graph.callees_of(region.name):
                if (
                    callee not in ic.functions
                    and callee in patchable
                    and not self.graph.node(callee).meta.in_system_header
                ):
                    out.add(callee)
                if len(out) >= self.max_new_per_iteration:
                    return out
        return out
