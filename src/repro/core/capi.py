"""The high-level CaPI driver: spec → selection → post-processing → IC.

This is the paper's Fig. 1 "Select" stage: given a whole-program call
graph and a selection specification, evaluate the pipeline, then (when
the target binaries are available) run the inlining-compensation
post-processing, producing the final instrumentation configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cg.graph import CallGraph
from repro.core.ic import ICProvenance, InstrumentationConfig
from repro.core.inlining import CompensationResult, compensate_inlining
from repro.core.pipeline import (
    SelectionResult,
    compile_spec,
    evaluate_compiled,
    evaluate_pipeline,
)
from repro.core.selectors.base import CrossRunCache
from repro.core.spec.modules import load_spec, load_spec_file
from repro.program.linker import LinkedProgram

#: FIFO cap on the per-Capi selection-outcome memo (entries strongly
#: reference linked program images)
_MEMO_CAP = 64


@dataclass
class CapiOutcome:
    """Everything a selection run produced — one Table I row."""

    ic: InstrumentationConfig
    selection: SelectionResult
    compensation: CompensationResult | None = None

    @property
    def selected_pre(self) -> int:
        return self.ic.provenance.selected_pre

    @property
    def selected_final(self) -> int:
        """#selected in the paper: after inlined functions are removed."""
        return len(self.ic.functions) - self.ic.provenance.added_compensation

    @property
    def added(self) -> int:
        return self.ic.provenance.added_compensation


@dataclass
class Capi:
    """CaPI configured for one target application.

    Whole selection outcomes are memoised per instance, keyed by the
    graph version — repeated ``select``/``select_all`` sweeps over an
    unchanged graph (rank sweeps, the Table I/II harnesses) are
    near-free, while any graph mutation transparently re-evaluates.
    Every *evaluated* (non-memo-hit) selection runs in a fresh context
    without cross-run sharing, so its ``selection_seconds`` provenance
    — Table I's time column — always measures one full evaluation.
    (Callers wanting sub-expression sharing across different specs can
    pass a :class:`~repro.core.selectors.base.CrossRunCache` to
    :func:`~repro.core.pipeline.evaluate_pipeline` directly.)
    """

    graph: CallGraph
    app_name: str = ""
    search_paths: list[Path] = field(default_factory=list)
    #: (spec source, spec name) -> (linked object, outcome); entries hold
    #: a strong reference to ``linked`` and are compared by identity, so
    #: a recycled ``id()`` can never alias a dead program.  The whole
    #: table is dropped when the graph version moves (no unbounded
    #: growth across mutations).  The table is additionally FIFO-capped
    #: at ``_MEMO_CAP`` entries so a caller re-linking per iteration
    #: cannot pin unbounded linked images.  Instances with
    #: ``search_paths`` skip the outcome memo entirely: ``!import``-ed
    #: modules may change on disk between calls.
    _outcomes: dict = field(default_factory=dict, repr=False)
    _outcomes_version: int = field(default=-1, repr=False)
    #: refinement state: compiled specs are graph-independent (plain
    #: LRU), and the cross-run cache rides the delta-aware invalidation
    #: of :class:`CrossRunCache` across graph edits
    _refine_compiled: dict = field(default_factory=dict, repr=False)
    _refine_cache: CrossRunCache | None = field(default=None, repr=False)

    def select(
        self,
        spec_source: str,
        *,
        spec_name: str = "",
        linked: LinkedProgram | None = None,
    ) -> CapiOutcome:
        """Run a specification given as source text.

        When ``linked`` binaries are supplied, inlining compensation is
        applied (it needs the symbol tables); otherwise the raw pipeline
        result becomes the IC.
        """
        memoize = not self.search_paths
        # id(linked) is safe in the key because the entry's strong
        # reference keeps the object alive — a recycled id can never
        # alias; the identity check below is belt-and-braces
        memo_key = (spec_source, spec_name, id(linked))
        if memoize:
            if self._outcomes_version != self.graph.version:
                self._outcomes.clear()
                self._outcomes_version = self.graph.version
            hit = self._outcomes.get(memo_key)
            if hit is not None and hit[0] is linked:
                return hit[1]
        spec = load_spec(spec_source, search_paths=self.search_paths)
        compiled = compile_spec(spec, spec_name=spec_name)
        selection = evaluate_pipeline(compiled.entry, self.graph)
        ic = InstrumentationConfig(
            functions=selection.selected,
            provenance=ICProvenance(
                spec_name=spec_name,
                app_name=self.app_name,
                selection_seconds=selection.duration_seconds,
                selected_pre=len(selection.selected),
            ),
        )
        compensation = None
        if linked is not None:
            compensation = compensate_inlining(ic, self.graph, linked)
            ic = compensation.ic
        outcome = CapiOutcome(ic=ic, selection=selection, compensation=compensation)
        if memoize:
            self._outcomes[memo_key] = (linked, outcome)
            while len(self._outcomes) > _MEMO_CAP:
                self._outcomes.pop(next(iter(self._outcomes)))
        return outcome

    def refine(
        self,
        spec_source: str,
        *,
        spec_name: str = "",
    ) -> SelectionResult:
        """Iterative refinement query through the compile/evaluate split.

        Where :meth:`select` deliberately evaluates in a fresh context —
        its ``selection_seconds`` provenance is Table I's time column and
        must measure one full evaluation — ``refine`` is the fast path
        for interactive spec iteration: the compiled spec is LRU-cached,
        evaluation runs against the graph's warm
        :class:`~repro.cg.csr.CsrSnapshot` (delta-refreshed across small
        edits), and a per-instance
        :class:`~repro.core.selectors.base.CrossRunCache` shares
        sub-expression results between successive refinements, keeping
        whatever the mutation journal proves untouched.  Results are
        identical to :meth:`select` on the same source; only the timing
        provenance differs in meaning (time-to-answer, not
        cost-of-selection).
        """
        key = (spec_source, spec_name)
        memoize = not self.search_paths
        compiled = self._refine_compiled.get(key) if memoize else None
        if compiled is None:
            spec = load_spec(spec_source, search_paths=self.search_paths)
            compiled = compile_spec(spec, spec_name=spec_name)
            if memoize:
                self._refine_compiled[key] = compiled
                while len(self._refine_compiled) > _MEMO_CAP:
                    self._refine_compiled.pop(next(iter(self._refine_compiled)))
        if self._refine_cache is None:
            self._refine_cache = CrossRunCache()
        return evaluate_compiled(
            compiled, self.graph.csr(), cross_run=self._refine_cache
        )

    def select_file(
        self,
        spec_path: str | Path,
        *,
        linked: LinkedProgram | None = None,
    ) -> CapiOutcome:
        """Run a specification from a ``.capi`` file."""
        spec_path = Path(spec_path)
        spec = load_spec_file(spec_path, search_paths=self.search_paths)
        compiled = compile_spec(spec, spec_name=spec_path.stem)
        # no whole-outcome memo here: the file may change on disk
        selection = evaluate_pipeline(compiled.entry, self.graph)
        ic = InstrumentationConfig(
            functions=selection.selected,
            provenance=ICProvenance(
                spec_name=spec_path.stem,
                app_name=self.app_name,
                selection_seconds=selection.duration_seconds,
                selected_pre=len(selection.selected),
            ),
        )
        compensation = None
        if linked is not None:
            compensation = compensate_inlining(ic, self.graph, linked)
            ic = compensation.ic
        return CapiOutcome(ic=ic, selection=selection, compensation=compensation)
