"""The high-level CaPI driver: spec → selection → post-processing → IC.

This is the paper's Fig. 1 "Select" stage: given a whole-program call
graph and a selection specification, evaluate the pipeline, then (when
the target binaries are available) run the inlining-compensation
post-processing, producing the final instrumentation configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cg.graph import CallGraph
from repro.core.ic import ICProvenance, InstrumentationConfig
from repro.core.inlining import CompensationResult, compensate_inlining
from repro.core.pipeline import PipelineBuilder, SelectionResult, evaluate_pipeline
from repro.core.spec.modules import load_spec, load_spec_file
from repro.program.linker import LinkedProgram


@dataclass
class CapiOutcome:
    """Everything a selection run produced — one Table I row."""

    ic: InstrumentationConfig
    selection: SelectionResult
    compensation: CompensationResult | None = None

    @property
    def selected_pre(self) -> int:
        return self.ic.provenance.selected_pre

    @property
    def selected_final(self) -> int:
        """#selected in the paper: after inlined functions are removed."""
        return len(self.ic.functions) - self.ic.provenance.added_compensation

    @property
    def added(self) -> int:
        return self.ic.provenance.added_compensation


@dataclass
class Capi:
    """CaPI configured for one target application."""

    graph: CallGraph
    app_name: str = ""
    search_paths: list[Path] = field(default_factory=list)

    def select(
        self,
        spec_source: str,
        *,
        spec_name: str = "",
        linked: LinkedProgram | None = None,
    ) -> CapiOutcome:
        """Run a specification given as source text.

        When ``linked`` binaries are supplied, inlining compensation is
        applied (it needs the symbol tables); otherwise the raw pipeline
        result becomes the IC.
        """
        spec = load_spec(spec_source, search_paths=self.search_paths)
        entry, _ = PipelineBuilder().build(spec)
        selection = evaluate_pipeline(entry, self.graph)
        ic = InstrumentationConfig(
            functions=selection.selected,
            provenance=ICProvenance(
                spec_name=spec_name,
                app_name=self.app_name,
                selection_seconds=selection.duration_seconds,
                selected_pre=len(selection.selected),
            ),
        )
        compensation = None
        if linked is not None:
            compensation = compensate_inlining(ic, self.graph, linked)
            ic = compensation.ic
        return CapiOutcome(ic=ic, selection=selection, compensation=compensation)

    def select_file(
        self,
        spec_path: str | Path,
        *,
        linked: LinkedProgram | None = None,
    ) -> CapiOutcome:
        """Run a specification from a ``.capi`` file."""
        spec_path = Path(spec_path)
        spec = load_spec_file(spec_path, search_paths=self.search_paths)
        entry, _ = PipelineBuilder().build(spec)
        selection = evaluate_pipeline(entry, self.graph)
        ic = InstrumentationConfig(
            functions=selection.selected,
            provenance=ICProvenance(
                spec_name=spec_path.stem,
                app_name=self.app_name,
                selection_seconds=selection.duration_seconds,
                selected_pre=len(selection.selected),
            ),
        )
        compensation = None
        if linked is not None:
            compensation = compensate_inlining(ic, self.graph, linked)
            ic = compensation.ic
        return CapiOutcome(ic=ic, selection=selection, compensation=compensation)
