"""``capi`` command-line interface.

Mirrors the tool surface of the original CaPI:

* ``capi select``  — evaluate a ``.capi`` spec against a MetaCG JSON
  call graph and write the IC as a Score-P-compatible filter file.
* ``capi cg``      — build the MetaCG call graph of a bundled synthetic
  application and write it to JSON (stand-in for the MetaCG tool).
* ``capi specs``   — print the paper's bundled evaluation specs.

Example::

    capi cg --app openfoam --nodes 8000 -o icoFoam.mcg.json
    capi select --cg icoFoam.mcg.json --spec mpi.capi -o mpi.filter
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.apps import PAPER_SPECS, build_lulesh, build_openfoam
from repro.cg import io as cg_io
from repro.cg.merge import build_whole_program_cg
from repro.core.capi import Capi
from repro.errors import ReproError


def _cmd_cg(args: argparse.Namespace) -> int:
    if args.app == "lulesh":
        program = build_lulesh(target_nodes=args.nodes or 3360)
    else:
        program = build_openfoam(target_nodes=args.nodes or 20_000)
    graph = build_whole_program_cg(program)
    cg_io.save(graph, args.output)
    print(f"wrote {len(graph)} nodes / {graph.edge_count()} edges to {args.output}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    graph = cg_io.load(args.cg)
    capi = Capi(graph=graph, search_paths=[Path(args.spec).parent])
    if args.spec in PAPER_SPECS:
        outcome = capi.select(PAPER_SPECS[args.spec], spec_name=args.spec)
    else:
        outcome = capi.select_file(args.spec)
    outcome.ic.dump_filter(args.output)
    if args.json:
        outcome.ic.dump_json(args.json)
    prov = outcome.ic.provenance
    print(
        f"selected {len(outcome.ic)} functions "
        f"({prov.selected_pre} pre) in {prov.selection_seconds:.2f}s "
        f"-> {args.output}"
    )
    return 0


def _cmd_specs(_args: argparse.Namespace) -> int:
    for name, source in PAPER_SPECS.items():
        print(f"# --- {name} ---{source}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="capi", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_cg = sub.add_parser("cg", help="build a MetaCG call graph (JSON)")
    p_cg.add_argument("--app", choices=["lulesh", "openfoam"], required=True)
    p_cg.add_argument("--nodes", type=int, default=None)
    p_cg.add_argument("-o", "--output", required=True)
    p_cg.set_defaults(func=_cmd_cg)

    p_sel = sub.add_parser("select", help="evaluate a spec into an IC")
    p_sel.add_argument("--cg", required=True, help="MetaCG JSON file")
    p_sel.add_argument(
        "--spec",
        required=True,
        help="path to a .capi file, or a bundled spec name "
        f"({', '.join(PAPER_SPECS)})",
    )
    p_sel.add_argument("-o", "--output", required=True, help="filter file")
    p_sel.add_argument("--json", help="also write IC + provenance as JSON")
    p_sel.set_defaults(func=_cmd_select)

    p_specs = sub.add_parser("specs", help="print the bundled paper specs")
    p_specs.set_defaults(func=_cmd_specs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"capi: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
