"""The legacy static instrumentation workflow (paper §I, §VII-A).

Before the XRay extension, every IC change required recompiling the
target: the IC file is consumed at compile time, measurement hooks are
emitted directly into the binary, and the result is a dedicated build
per configuration.  We model the workflow's *cost structure* — a
rebuild charge proportional to the translation-unit count — and its
*artefact* — a linked program whose selected functions are permanently
instrumented (their sleds patched at load, immutable afterwards).

The turnaround ablation (AB3 in DESIGN.md) compares N refinement
iterations under this workflow against DynCaPI re-patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.program.compiler import Compiler, CompilerConfig
from repro.program.ir import SourceProgram
from repro.program.linker import LinkedProgram, Linker

#: virtual seconds to recompile one translation unit.  Calibrated so the
#: openfoam-like generator at paper scale lands near the paper's
#: "approx. 50 minutes for a full recompilation" (§VII-A).
REBUILD_SECONDS_PER_TU = 2.2
#: constant build-system overhead per rebuild (configure, link, install)
REBUILD_BASE_SECONDS = 45.0


@dataclass
class StaticBuild:
    """One statically instrumented build."""

    linked: LinkedProgram
    ic: InstrumentationConfig
    rebuild_seconds: float

    def is_instrumented(self, function: str) -> bool:
        return function in self.ic


@dataclass
class StaticInstrumenter:
    """Compile-time instrumentation: one full rebuild per IC."""

    program: SourceProgram
    compiler_config: CompilerConfig = field(default_factory=CompilerConfig)
    #: cumulative virtual rebuild time across refinement iterations
    total_rebuild_seconds: float = 0.0
    builds: int = 0

    def build(self, ic: InstrumentationConfig) -> StaticBuild:
        """Recompile the whole program with the IC applied.

        The compiler itself is identical; static instrumentation means
        sleds are conceptually replaced by direct hook calls, so only
        the selected functions are instrumentable at all — changing the
        set requires calling :meth:`build` again.
        """
        compiled = Compiler(self.compiler_config).compile(self.program)
        for mf in compiled.machine_functions.values():
            mf.xray_instrumented = mf.xray_instrumented and mf.name in ic
        linked = Linker().link(compiled)
        cost = self.rebuild_cost_seconds()
        self.total_rebuild_seconds += cost
        self.builds += 1
        return StaticBuild(linked=linked, ic=ic, rebuild_seconds=cost)

    def rebuild_cost_seconds(self) -> float:
        """Virtual cost of one full rebuild."""
        n_tus = len(self.program.translation_units)
        return REBUILD_BASE_SECONDS + REBUILD_SECONDS_PER_TU * n_tus

    def adjust(self, build: StaticBuild, new_ic: InstrumentationConfig) -> StaticBuild:
        """Change the IC — only possible through a full rebuild."""
        if new_ic.functions == build.ic.functions:
            raise CapiError("IC unchanged; adjustment would rebuild needlessly")
        return self.build(new_ic)
