"""Instrumentation configurations (ICs).

An IC is the artefact CaPI produces: the set of functions to instrument,
plus provenance of the post-processing steps applied to it.  It is
written out "as a filter file that is compatible with the format used by
Score-P" (paper §III-A) and consumed either at compile time (static
instrumentation) or by DynCaPI at program start via an environment
variable (``CAPI_FILTER_FILE`` in our model).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.scorep.filter import ScorePFilter

#: environment variable DynCaPI reads the IC path from
IC_ENV_VAR = "CAPI_FILTER_FILE"


@dataclass(frozen=True)
class ICProvenance:
    """Where an IC came from — the columns of the paper's Table I."""

    spec_name: str = ""
    app_name: str = ""
    selection_seconds: float = 0.0
    #: selected before post-processing (#selected pre)
    selected_pre: int = 0
    #: removed because the symbol-approximation marked them inlined
    removed_inlined: int = 0
    #: callers added by inlining compensation (#added)
    added_compensation: int = 0


@dataclass(frozen=True)
class InstrumentationConfig:
    """An immutable instrumentation configuration."""

    functions: frozenset[str]
    provenance: ICProvenance = field(default_factory=ICProvenance)

    def __len__(self) -> int:
        return len(self.functions)

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def with_functions(self, functions: frozenset[str], **prov_updates) -> "InstrumentationConfig":
        from dataclasses import replace

        return InstrumentationConfig(
            functions=functions,
            provenance=replace(self.provenance, **prov_updates),
        )

    # -- Score-P filter compatibility ------------------------------------------

    def to_filter(self) -> ScorePFilter:
        return ScorePFilter.include_only(self.functions)

    @classmethod
    def from_filter(cls, filt: ScorePFilter) -> "InstrumentationConfig":
        return cls(functions=frozenset(filt.included_names()))

    def dump_filter(self, path: str | Path) -> None:
        self.to_filter().dump(path)

    @classmethod
    def load_filter(cls, path: str | Path) -> "InstrumentationConfig":
        return cls.from_filter(ScorePFilter.load(path))

    # -- JSON sidecar with provenance -----------------------------------------------

    def dump_json(self, path: str | Path) -> None:
        data = {
            "functions": sorted(self.functions),
            "provenance": {
                "spec_name": self.provenance.spec_name,
                "app_name": self.provenance.app_name,
                "selection_seconds": self.provenance.selection_seconds,
                "selected_pre": self.provenance.selected_pre,
                "removed_inlined": self.provenance.removed_inlined,
                "added_compensation": self.provenance.added_compensation,
            },
        }
        Path(path).write_text(json.dumps(data, indent=1))

    @classmethod
    def load_json(cls, path: str | Path) -> "InstrumentationConfig":
        data = json.loads(Path(path).read_text())
        prov = data.get("provenance", {})
        return cls(
            functions=frozenset(data["functions"]),
            provenance=ICProvenance(
                spec_name=prov.get("spec_name", ""),
                app_name=prov.get("app_name", ""),
                selection_seconds=prov.get("selection_seconds", 0.0),
                selected_pre=prov.get("selected_pre", 0),
                removed_inlined=prov.get("removed_inlined", 0),
                added_compensation=prov.get("added_compensation", 0),
            ),
        )
