"""Inlining compensation post-processing (paper §V-E).

XRay sleds are inserted after inlining, so a selected function that the
compiler inlined everywhere can never be patched — its profile data
would silently vanish.  CaPI compensates in two steps:

1. *Approximate the inlined set*: "if a function symbol cannot be found
   [in the program binary and all dependent shared objects], it has
   been inlined at all call sites."  The approximation is imperfect in
   both directions — symbols may be retained after inlining — and we
   reproduce that imperfection (the compiler model keeps some inlined
   functions' symbols for vague-linkage reasons).
2. For each selected-but-inlined function, walk the call graph upwards
   to the *first available non-inlined callers*, add those to the IC,
   and drop the inlined function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cg.graph import CallGraph
from repro.core.ic import InstrumentationConfig
from repro.program.linker import LinkedProgram


@dataclass
class CompensationResult:
    """Outcome of one compensation pass (Table I's last two columns)."""

    ic: InstrumentationConfig
    removed: set[str] = field(default_factory=set)
    added: set[str] = field(default_factory=set)
    #: selected functions with no non-inlined caller at all (entry-point
    #: pathologies); they are dropped with a warning
    uncovered: set[str] = field(default_factory=set)


def available_symbols(linked: LinkedProgram) -> set[str]:
    """Symbols visible to ``nm`` across the executable and all DSOs."""
    names: set[str] = set()
    for obj in linked.all_objects():
        names.update(sym.name for sym in obj.nm_symbols())
    return names


def approximate_inlined(
    selected: frozenset[str], symbols: set[str]
) -> set[str]:
    """Selected functions whose symbol is missing → assumed inlined."""
    return {name for name in selected if name not in symbols}


def compensate_inlining(
    ic: InstrumentationConfig,
    graph: CallGraph,
    linked: LinkedProgram,
) -> CompensationResult:
    """Apply the paper's §V-E post-processing to an IC."""
    symbols = available_symbols(linked)
    inlined = approximate_inlined(ic.functions, symbols)
    kept = set(ic.functions) - inlined
    added: set[str] = set()
    uncovered: set[str] = set()

    for name in sorted(inlined):
        callers = _first_non_inlined_callers(graph, name, symbols)
        if not callers:
            uncovered.add(name)
            continue
        # only count callers not already selected as compensation
        added.update(c for c in callers if c not in kept)

    final = frozenset(kept | added)
    new_ic = ic.with_functions(
        final,
        removed_inlined=len(inlined),
        added_compensation=len(added),
    )
    return CompensationResult(
        ic=new_ic, removed=inlined, added=added, uncovered=uncovered
    )


def _first_non_inlined_callers(
    graph: CallGraph, name: str, symbols: set[str]
) -> set[str]:
    """Walk callers upward until hitting functions with symbols.

    "For each such function, the first available non-inlined callers are
    determined recursively."  A breadth-first walk stops at the first
    symbol-bearing caller on each path.
    """
    if name not in graph:
        return set()
    found: set[str] = set()
    seen: set[str] = {name}
    frontier = list(graph.callers_of(name))
    while frontier:
        caller = frontier.pop()
        if caller in seen:
            continue
        seen.add(caller)
        if caller in symbols:
            found.add(caller)
        else:
            frontier.extend(graph.callers_of(caller))
    return found
