"""Build and evaluate a selection pipeline from a parsed specification.

The builder turns the flattened spec AST into a selector DAG: ``%name``
references resolve to previously-defined instances, ``%%`` to the
universe selector, and the last statement becomes the pipeline entry
point.  Evaluation returns both the selected set and per-selector trace
information (used for Table I's selection-time column and diagnostics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cg.graph import CallGraph
from repro.core.selectors.base import (
    AllSelector,
    CrossRunCache,
    EvalContext,
    NamedRef,
    Selector,
)
from repro.core.selectors.registry import Factory, lookup
from repro.core.spec.ast import (
    AllExpr,
    Assign,
    CallExpr,
    Expr,
    NumLit,
    RefExpr,
    SpecFile,
    StrLit,
)
from repro.errors import SpecSemanticError


@dataclass
class SelectionResult:
    """Outcome of evaluating a pipeline over one call graph."""

    selected: frozenset[str]
    duration_seconds: float
    graph_size: int
    trace: list[tuple[str, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.selected)


def _canonical_key(expr: Expr, named: dict[str, Selector]) -> str | None:
    """Structural cache key of one spec expression.

    ``%name`` references expand to the key of their *defining*
    expression, so structurally identical pipelines share keys across
    different spec files while same-named but different definitions
    never collide.  Returns ``None`` when any part is unkeyable.
    """
    if isinstance(expr, AllExpr):
        return "%%"
    if isinstance(expr, RefExpr):
        return getattr(named.get(expr.name), "cache_key", None)
    if isinstance(expr, StrLit):
        return f"s{expr.value!r}"
    if isinstance(expr, NumLit):
        return f"n{expr.value!r}"
    if isinstance(expr, CallExpr):
        parts = [_canonical_key(arg, named) for arg in expr.args]
        if any(p is None for p in parts):
            return None
        return f"{expr.selector}({','.join(parts)})"  # type: ignore[arg-type]
    return None


def _attach_cache_key(
    selector: Selector, expr: Expr, named: dict[str, Selector]
) -> None:
    key = _canonical_key(expr, named)
    if key is not None:
        try:
            selector.cache_key = key  # type: ignore[attr-defined]
        except AttributeError:
            pass  # slotted third-party selector: simply stays uncached


class PipelineBuilder:
    """Resolve a spec AST into a selector DAG."""

    def __init__(self, registry: dict[str, Factory] | None = None):
        self._registry = registry
        self._all = AllSelector()
        self._all.cache_key = "%%"

    def build(self, spec: SpecFile) -> tuple[Selector, dict[str, Selector]]:
        """Returns ``(entry selector, named instances)``."""
        named: dict[str, Selector] = {}
        entry: Selector | None = None
        for stmt in spec.statements:
            if isinstance(stmt, Assign):
                if stmt.name in named:
                    raise SpecSemanticError(
                        f"selector instance {stmt.name!r} redefined"
                    )
                selector = NamedRef(stmt.name, self._build_expr(stmt.expr, named))
                if self._registry is None:
                    _attach_cache_key(selector, stmt.expr, named)
                named[stmt.name] = selector
                entry = selector
            else:
                entry = self._build_expr(stmt, named)
        if entry is None:
            raise SpecSemanticError("specification defines no selectors")
        return entry, named

    def _build_expr(self, expr: Expr, named: dict[str, Selector]) -> Selector:
        if isinstance(expr, AllExpr):
            return self._all
        if isinstance(expr, RefExpr):
            try:
                return named[expr.name]
            except KeyError:
                raise SpecSemanticError(
                    f"reference to undefined selector %{expr.name}"
                ) from None
        if isinstance(expr, CallExpr):
            factory = lookup(expr.selector, self._registry)
            args = []
            for arg in expr.args:
                if isinstance(arg, StrLit):
                    args.append(arg.value)
                elif isinstance(arg, NumLit):
                    args.append(arg.value)
                else:
                    args.append(self._build_expr(arg, named))
            selector = factory(*args)
            if self._registry is None:
                # structural keys encode only selector names, which a
                # custom registry may bind to different implementations
                # — such pipelines stay out of the cross-run cache
                _attach_cache_key(selector, expr, named)
            return selector
        raise SpecSemanticError(
            f"literal {expr!r} cannot be used as a selector"
        )


def evaluate_pipeline(
    entry: Selector,
    graph: CallGraph,
    *,
    cross_run: CrossRunCache | None = None,
) -> SelectionResult:
    """Evaluate a built pipeline, timing the selection process.

    ``cross_run`` opts into result reuse across pipeline runs: selector
    results land in (and are served from) the cache for as long as the
    graph version is unchanged.  Benchmarks that want honest timings
    must leave it off (the default).
    """
    start = time.perf_counter()
    if cross_run is not None:
        ctx = EvalContext.with_cross_run(graph, cross_run)
    else:
        ctx = EvalContext(graph)
    selected = ctx.evaluate(entry)
    duration = time.perf_counter() - start
    return SelectionResult(
        selected=selected,
        duration_seconds=duration,
        graph_size=len(graph),
        trace=ctx.trace,
    )


def run_spec(
    spec: SpecFile,
    graph: CallGraph,
    *,
    registry: dict[str, Factory] | None = None,
) -> SelectionResult:
    """Build and evaluate in one step."""
    entry, _named = PipelineBuilder(registry).build(spec)
    return evaluate_pipeline(entry, graph)
