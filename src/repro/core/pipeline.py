"""Build and evaluate a selection pipeline from a parsed specification.

The builder turns the flattened spec AST into a selector DAG: ``%name``
references resolve to previously-defined instances, ``%%`` to the
universe selector, and the last statement becomes the pipeline entry
point.  Evaluation returns both the selected set and per-selector trace
information (used for Table I's selection-time column and diagnostics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cg.graph import CallGraph
from repro.core.selectors.base import AllSelector, EvalContext, NamedRef, Selector
from repro.core.selectors.registry import Factory, lookup
from repro.core.spec.ast import (
    AllExpr,
    Assign,
    CallExpr,
    Expr,
    NumLit,
    RefExpr,
    SpecFile,
    StrLit,
)
from repro.errors import SpecSemanticError


@dataclass
class SelectionResult:
    """Outcome of evaluating a pipeline over one call graph."""

    selected: frozenset[str]
    duration_seconds: float
    graph_size: int
    trace: list[tuple[str, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.selected)


class PipelineBuilder:
    """Resolve a spec AST into a selector DAG."""

    def __init__(self, registry: dict[str, Factory] | None = None):
        self._registry = registry
        self._all = AllSelector()

    def build(self, spec: SpecFile) -> tuple[Selector, dict[str, Selector]]:
        """Returns ``(entry selector, named instances)``."""
        named: dict[str, Selector] = {}
        entry: Selector | None = None
        for stmt in spec.statements:
            if isinstance(stmt, Assign):
                if stmt.name in named:
                    raise SpecSemanticError(
                        f"selector instance {stmt.name!r} redefined"
                    )
                selector = NamedRef(stmt.name, self._build_expr(stmt.expr, named))
                named[stmt.name] = selector
                entry = selector
            else:
                entry = self._build_expr(stmt, named)
        if entry is None:
            raise SpecSemanticError("specification defines no selectors")
        return entry, named

    def _build_expr(self, expr: Expr, named: dict[str, Selector]) -> Selector:
        if isinstance(expr, AllExpr):
            return self._all
        if isinstance(expr, RefExpr):
            try:
                return named[expr.name]
            except KeyError:
                raise SpecSemanticError(
                    f"reference to undefined selector %{expr.name}"
                ) from None
        if isinstance(expr, CallExpr):
            factory = lookup(expr.selector, self._registry)
            args = []
            for arg in expr.args:
                if isinstance(arg, StrLit):
                    args.append(arg.value)
                elif isinstance(arg, NumLit):
                    args.append(arg.value)
                else:
                    args.append(self._build_expr(arg, named))
            return factory(*args)
        raise SpecSemanticError(
            f"literal {expr!r} cannot be used as a selector"
        )


def evaluate_pipeline(
    entry: Selector, graph: CallGraph
) -> SelectionResult:
    """Evaluate a built pipeline, timing the selection process."""
    start = time.perf_counter()
    ctx = EvalContext(graph)
    selected = ctx.evaluate(entry)
    duration = time.perf_counter() - start
    return SelectionResult(
        selected=selected,
        duration_seconds=duration,
        graph_size=len(graph),
        trace=ctx.trace,
    )


def run_spec(
    spec: SpecFile,
    graph: CallGraph,
    *,
    registry: dict[str, Factory] | None = None,
) -> SelectionResult:
    """Build and evaluate in one step."""
    entry, _named = PipelineBuilder(registry).build(spec)
    return evaluate_pipeline(entry, graph)
