"""Compile and evaluate selection pipelines from parsed specifications.

The builder turns the flattened spec AST into a selector DAG: ``%name``
references resolve to previously-defined instances, ``%%`` to the
universe selector, and the last statement becomes the pipeline entry
point.  Evaluation returns both the selected set and per-selector trace
information (used for Table I's selection-time column and diagnostics).

Selection is split into two explicit phases so long-lived services can
amortise each independently:

* **compile** — :func:`compile_spec` resolves a spec (source text or
  parsed :class:`~repro.core.spec.ast.SpecFile`) into a
  :class:`CompiledSpec`: the selector DAG plus the structural
  ``cache_key`` of every keyable node (see :func:`cache_key`).  A
  compiled spec is immutable and graph-independent — it can be evaluated
  against any number of call graphs, concurrently.
* **evaluate** — :func:`evaluate_pipeline` runs a pipeline over a
  :class:`~repro.cg.graph.CallGraph`; :func:`evaluate_compiled` is the
  service-oriented variant that runs against a *supplied* warm
  ``(CsrSnapshot, CrossRunCache)`` pair instead of building its own
  context, so many queries share one snapshot and one structural-key
  result store (see :mod:`repro.service`).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.cg.csr import CsrSnapshot
from repro.cg.graph import CallGraph
from repro.core.selectors.base import (
    AllSelector,
    CrossRunCache,
    EvalContext,
    NamedRef,
    Selector,
)
from repro.core.selectors.registry import DEFAULT_REGISTRY, Factory, lookup
from repro.core.spec.ast import (
    AllExpr,
    Assign,
    CallExpr,
    Expr,
    NumLit,
    RefExpr,
    SpecFile,
    StrLit,
)
from repro.errors import SpecSemanticError


@dataclass
class SelectionResult:
    """Outcome of evaluating a pipeline over one call graph."""

    selected: frozenset[str]
    duration_seconds: float
    graph_size: int
    trace: list[tuple[str, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.selected)


def cache_key(expr: Expr, named: dict[str, Selector] | None = None) -> str | None:
    """Structural cache key of one spec expression.

    ``%name`` references expand to the key of their *defining*
    expression, so structurally identical pipelines share keys across
    different spec files while same-named but different definitions
    never collide.  Returns ``None`` when any part is unkeyable.

    The key encodes selector *names* under their default-registry
    meaning; :class:`PipelineBuilder` attaches keys per node only where
    the resolving factory is the default one, so keys never alias custom
    selector semantics (see :func:`attach_cache_key`).
    """
    named = named or {}
    if isinstance(expr, AllExpr):
        return "%%"
    if isinstance(expr, RefExpr):
        return getattr(named.get(expr.name), "cache_key", None)
    if isinstance(expr, StrLit):
        return f"s{expr.value!r}"
    if isinstance(expr, NumLit):
        return f"n{expr.value!r}"
    if isinstance(expr, CallExpr):
        parts = [cache_key(arg, named) for arg in expr.args]
        if any(p is None for p in parts):
            return None
        return f"{expr.selector}({','.join(parts)})"  # type: ignore[arg-type]
    return None


def attach_cache_key(
    selector: Selector, expr: Expr, named: dict[str, Selector] | None = None
) -> str | None:
    """Attach ``expr``'s structural key to ``selector``; returns the key."""
    key = cache_key(expr, named)
    if key is not None:
        try:
            selector.cache_key = key  # type: ignore[attr-defined]
        except AttributeError:
            return None  # slotted third-party selector: simply stays uncached
    return key


# backwards-compatible private aliases (pre-service internal API)
_canonical_key = cache_key
_attach_cache_key = attach_cache_key


@dataclass(frozen=True)
class CompiledSpec:
    """A specification compiled to its selector DAG (the compile phase).

    Immutable and graph-independent: one compiled spec may be evaluated
    over any call graph, repeatedly and concurrently.  ``cache_key`` is
    the structural key of the entry selector (``None`` when the entry is
    unkeyable) — two compiled specs with equal keys select identical
    sets on any given graph version, which is what the service layer's
    batch dedup relies on.
    """

    entry: Selector
    named: dict[str, Selector]
    cache_key: str | None
    source: str = ""
    spec_name: str = ""


def compile_spec(
    spec: SpecFile | str,
    *,
    registry: dict[str, Factory] | None = None,
    spec_name: str = "",
    search_paths: list[Path] | None = None,
) -> CompiledSpec:
    """Compile a spec (source text or parsed AST) into a :class:`CompiledSpec`."""
    source = ""
    if isinstance(spec, str):
        from repro.core.spec.modules import load_spec

        source = spec
        spec = load_spec(spec, search_paths=search_paths)
    entry, named = PipelineBuilder(registry).build(spec)
    return CompiledSpec(
        entry=entry,
        named=named,
        cache_key=getattr(entry, "cache_key", None),
        source=source,
        spec_name=spec_name,
    )


class PipelineBuilder:
    """Resolve a spec AST into a selector DAG.

    Structural cache keys are attached bottom-up from already-built
    child selectors, so a node is keyed exactly when its own factory
    resolves to the default-registry one *and* every child is keyed.
    With a custom ``registry``, names bound to non-default factories
    stay unkeyed (their semantics may differ from what the key encodes)
    and a :class:`RuntimeWarning` flags the lost cross-run caching once
    per name.
    """

    def __init__(self, registry: dict[str, Factory] | None = None):
        self._registry = registry
        self._all = AllSelector()
        self._all.cache_key = "%%"
        self._warned: set[str] = set()

    def build(self, spec: SpecFile) -> tuple[Selector, dict[str, Selector]]:
        """Returns ``(entry selector, named instances)``."""
        named: dict[str, Selector] = {}
        entry: Selector | None = None
        for stmt in spec.statements:
            if isinstance(stmt, Assign):
                if stmt.name in named:
                    raise SpecSemanticError(
                        f"selector instance {stmt.name!r} redefined"
                    )
                inner = self._build_expr(stmt.expr, named)
                selector = NamedRef(stmt.name, inner)
                key = getattr(inner, "cache_key", None)
                if key is not None:
                    selector.cache_key = key
                named[stmt.name] = selector
                entry = selector
            else:
                entry = self._build_expr(stmt, named)
        if entry is None:
            raise SpecSemanticError("specification defines no selectors")
        return entry, named

    def _keyable(self, name: str, factory: Factory) -> bool:
        """Whether results of ``name``'s factory may share structural keys."""
        if self._registry is None or DEFAULT_REGISTRY.get(name) is factory:
            return True
        if name not in self._warned:
            self._warned.add(name)
            warnings.warn(
                f"selector {name!r} resolves to a non-default factory; its "
                "results stay out of the cross-run cache (structural keys "
                "encode default-registry semantics)",
                RuntimeWarning,
                stacklevel=4,
            )
        return False

    def _build_expr(self, expr: Expr, named: dict[str, Selector]) -> Selector:
        if isinstance(expr, AllExpr):
            return self._all
        if isinstance(expr, RefExpr):
            try:
                return named[expr.name]
            except KeyError:
                raise SpecSemanticError(
                    f"reference to undefined selector %{expr.name}"
                ) from None
        if isinstance(expr, CallExpr):
            factory = lookup(expr.selector, self._registry)
            args: list = []
            parts: list[str | None] = []
            for arg in expr.args:
                if isinstance(arg, StrLit):
                    args.append(arg.value)
                    parts.append(f"s{arg.value!r}")
                elif isinstance(arg, NumLit):
                    args.append(arg.value)
                    parts.append(f"n{arg.value!r}")
                else:
                    child = self._build_expr(arg, named)
                    args.append(child)
                    parts.append(getattr(child, "cache_key", None))
            selector = factory(*args)
            if self._keyable(expr.selector, factory) and not any(
                p is None for p in parts
            ):
                try:
                    selector.cache_key = (  # type: ignore[attr-defined]
                        f"{expr.selector}({','.join(parts)})"  # type: ignore[arg-type]
                    )
                except AttributeError:
                    pass  # slotted third-party selector: simply stays uncached
            return selector
        raise SpecSemanticError(
            f"literal {expr!r} cannot be used as a selector"
        )


def _evaluate(
    entry: Selector,
    graph: CallGraph,
    cross_run: CrossRunCache | None,
) -> SelectionResult:
    start = time.perf_counter()
    if cross_run is not None:
        ctx = EvalContext.with_cross_run(graph, cross_run)
    else:
        ctx = EvalContext(graph)
    selected = ctx.evaluate(entry)
    duration = time.perf_counter() - start
    return SelectionResult(
        selected=selected,
        duration_seconds=duration,
        graph_size=len(graph),
        trace=ctx.trace,
    )


def evaluate_pipeline(
    entry: Selector,
    graph: CallGraph,
    *,
    cross_run: CrossRunCache | None = None,
) -> SelectionResult:
    """Evaluate a built pipeline, timing the selection process.

    ``cross_run`` opts into result reuse across pipeline runs: selector
    results land in (and are served from) the cache for as long as the
    graph version is unchanged.  Benchmarks that want honest timings
    must leave it off (the default).
    """
    return _evaluate(entry, graph, cross_run)


def evaluate_compiled(
    compiled: CompiledSpec,
    snapshot: CsrSnapshot,
    *,
    cross_run: CrossRunCache | None = None,
) -> SelectionResult:
    """Evaluate phase against a supplied warm ``(snapshot, cache)`` pair.

    The service layer holds one :class:`~repro.cg.csr.CsrSnapshot` and
    one :class:`CrossRunCache` per warm graph; every query over that
    graph evaluates through here instead of building its own context, so
    structurally shared sub-expressions are computed once per graph
    version.  The snapshot is freshness-checked: evaluating against a
    snapshot whose graph has since mutated raises rather than mixing
    versions.

    Both memo layers under this entry point are keyed to survive small
    graph deltas rather than any version bump: the heavy sweep and
    aggregation intermediates live on the snapshot keyed by *root id*
    (``("reach"/"depth"/"agg", root_id)`` in ``CsrSnapshot.analyses``)
    and are carried through a delta refresh whenever no touched id lies
    in the root's reachable cone, while the cross-run cache keys final
    selector results by structural expression and drops, per delta, only
    those whose recorded support sets intersect the touched ids.  A
    16-edge edit on a 400k-node graph therefore re-runs the pipeline
    stages whose supporting components the edit touched — everything
    else is served warm.
    """
    return _evaluate(compiled.entry, snapshot.graph, cross_run)


def run_spec(
    spec: SpecFile,
    graph: CallGraph,
    *,
    registry: dict[str, Factory] | None = None,
) -> SelectionResult:
    """Build and evaluate in one step."""
    compiled = compile_spec(spec, registry=registry)
    return evaluate_pipeline(compiled.entry, graph)
