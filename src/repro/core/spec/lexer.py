"""Lexer for the CaPI selection DSL.

Handles the surface syntax of the paper's Listing 1: identifiers,
double-quoted strings, integers/floats, parentheses, commas, ``=``,
``%name`` references, the ``%%`` universe selector, ``!import`` and
``#``-to-end-of-line comments.
"""

from __future__ import annotations

from repro.core.spec.tokens import Token, TokenKind
from repro.errors import SpecSyntaxError

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(text)

    def tok(kind: TokenKind, value: str, l: int, c: int) -> None:
        tokens.append(Token(kind, value, l, c))

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        if ch == "(":
            tok(TokenKind.LPAREN, ch, start_line, start_col)
            i += 1
            col += 1
        elif ch == ")":
            tok(TokenKind.RPAREN, ch, start_line, start_col)
            i += 1
            col += 1
        elif ch == ",":
            tok(TokenKind.COMMA, ch, start_line, start_col)
            i += 1
            col += 1
        elif ch == "=":
            tok(TokenKind.EQUALS, ch, start_line, start_col)
            i += 1
            col += 1
        elif ch == "!":
            tok(TokenKind.BANG, ch, start_line, start_col)
            i += 1
            col += 1
        elif ch == "%":
            if i + 1 < n and text[i + 1] == "%":
                tok(TokenKind.ALL, "%%", start_line, start_col)
                i += 2
                col += 2
            else:
                j = i + 1
                if j >= n or text[j] not in _IDENT_START:
                    raise SpecSyntaxError(
                        "expected identifier after '%'", start_line, start_col
                    )
                while j < n and text[j] in _IDENT_CONT:
                    j += 1
                tok(TokenKind.REF, text[i + 1 : j], start_line, start_col)
                col += j - i
                i = j
        elif ch == '"':
            j = i + 1
            buf = []
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise SpecSyntaxError(
                        "unterminated string literal", start_line, start_col
                    )
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                    continue
                buf.append(text[j])
                j += 1
            if j >= n:
                raise SpecSyntaxError(
                    "unterminated string literal", start_line, start_col
                )
            tok(TokenKind.STRING, "".join(buf), start_line, start_col)
            col += j + 1 - i
            i = j + 1
        elif ch.isdigit() or (
            ch == "-" and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tok(TokenKind.NUMBER, text[i:j], start_line, start_col)
            col += j - i
            i = j
        elif ch in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tok(TokenKind.IDENT, text[i:j], start_line, start_col)
            col += j - i
            i = j
        else:
            raise SpecSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
