"""Module import resolution for ``!import("...")`` directives.

"Recently, the ability to import existing specification modules was
added, in order to simplify re-use of common functionality across
applications" (paper §III-A).  Imports resolve against user-provided
search paths first, then the bundled module directory shipped with this
package (``mpi.capi``, ``common.capi``).  Imports may nest; cycles are
rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import resources
from pathlib import Path

from repro.core.spec.ast import Assign, ImportDirective, SpecFile
from repro.core.spec.parser import parse_spec
from repro.errors import ImportResolutionError


def bundled_module_dir() -> Path:
    """Directory of the specification modules shipped with the package."""
    return Path(str(resources.files("repro.core.spec") / "modules"))


@dataclass
class ModuleResolver:
    """Load and flatten a spec with all its transitive imports."""

    search_paths: list[Path] = field(default_factory=list)

    def resolve_file(self, module: str) -> Path:
        candidates = [*self.search_paths, bundled_module_dir()]
        for base in candidates:
            path = Path(base) / module
            if path.is_file():
                return path
        raise ImportResolutionError(
            f"cannot resolve import {module!r}; searched "
            f"{[str(c) for c in candidates]}"
        )

    def flatten(self, spec: SpecFile) -> SpecFile:
        """Inline all imports: imported named instances come first.

        Imported *anonymous* statements are dropped — only named
        instances are reusable across files; the importing file keeps
        control of the pipeline entry point.
        """
        out = SpecFile()
        self._flatten_into(spec, out, loading=[], top_level=True)
        return out

    def _flatten_into(
        self,
        spec: SpecFile,
        out: SpecFile,
        *,
        loading: list[str],
        top_level: bool,
    ) -> None:
        for imp in spec.imports:
            self._load_import(imp, out, loading)
        for stmt in spec.statements:
            if top_level or isinstance(stmt, Assign):
                out.statements.append(stmt)

    def _load_import(
        self, imp: ImportDirective, out: SpecFile, loading: list[str]
    ) -> None:
        if imp.module in loading:
            chain = " -> ".join([*loading, imp.module])
            raise ImportResolutionError(f"circular import: {chain}")
        path = self.resolve_file(imp.module)
        sub = parse_spec(path.read_text())
        self._flatten_into(
            sub, out, loading=[*loading, imp.module], top_level=False
        )


def load_spec(
    source: str, *, search_paths: list[Path] | None = None
) -> SpecFile:
    """Parse a spec string and flatten its imports."""
    resolver = ModuleResolver(search_paths=list(search_paths or []))
    return resolver.flatten(parse_spec(source))


def load_spec_file(
    path: str | Path, *, search_paths: list[Path] | None = None
) -> SpecFile:
    path = Path(path)
    paths = [path.parent, *(search_paths or [])]
    return load_spec(path.read_text(), search_paths=paths)
