"""Token definitions for the CaPI selection DSL."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    EQUALS = "="
    #: ``%name`` — reference to a named selector instance
    REF = "ref"
    #: ``%%`` — the set of all functions
    ALL = "%%"
    #: ``!import`` directive introducer
    BANG = "!"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
