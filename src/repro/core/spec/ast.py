"""AST of a CaPI selection specification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union["CallExpr", "RefExpr", "AllExpr", "StrLit", "NumLit"]


@dataclass(frozen=True)
class StrLit:
    value: str


@dataclass(frozen=True)
class NumLit:
    value: float

    @property
    def as_int(self) -> int:
        return int(self.value)


@dataclass(frozen=True)
class RefExpr:
    """``%name`` — reference to a previously defined instance."""

    name: str


@dataclass(frozen=True)
class AllExpr:
    """``%%`` — the pre-defined selector of all functions."""


@dataclass(frozen=True)
class CallExpr:
    """``selectorType(arg, ...)`` — an anonymous selector instance."""

    selector: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Assign:
    """``name = expr`` — a named selector instance."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class ImportDirective:
    """``!import("module.capi")``."""

    module: str


@dataclass
class SpecFile:
    """A parsed specification.

    ``statements`` preserves order; the last statement's expression is
    the pipeline entry point (paper §III-A).
    """

    imports: list[ImportDirective] = field(default_factory=list)
    statements: list[Assign | CallExpr | RefExpr | AllExpr] = field(
        default_factory=list
    )

    @property
    def entry(self) -> Expr:
        from repro.errors import SpecSemanticError

        if not self.statements:
            raise SpecSemanticError("specification defines no selectors")
        last = self.statements[-1]
        return last.expr if isinstance(last, Assign) else last
