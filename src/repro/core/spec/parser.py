"""Recursive-descent parser for the CaPI selection DSL.

Grammar (commas between call arguments are optional — the paper's own
Listing 1 writes ``loopDepth(">=" 1, %%)``)::

    spec      := (import | statement)*
    import    := '!' 'import' '(' STRING ')'
    statement := IDENT '=' expr | expr
    expr      := IDENT '(' args? ')' | '%' IDENT | '%%' | STRING | NUMBER
    args      := expr ((',')? expr)*
"""

from __future__ import annotations

from repro.core.spec.ast import (
    AllExpr,
    Assign,
    CallExpr,
    Expr,
    ImportDirective,
    NumLit,
    RefExpr,
    SpecFile,
    StrLit,
)
from repro.core.spec.lexer import tokenize
from repro.core.spec.tokens import Token, TokenKind
from repro.errors import SpecSyntaxError


class Parser:
    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0

    # -- helpers -----------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise SpecSyntaxError(
                f"expected {kind.value!r}, found {tok.text!r}", tok.line, tok.column
            )
        return self._advance()

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> SpecFile:
        spec = SpecFile()
        while self._peek().kind is not TokenKind.EOF:
            if self._peek().kind is TokenKind.BANG:
                spec.imports.append(self._import_directive())
            else:
                spec.statements.append(self._statement())
        return spec

    def _import_directive(self) -> ImportDirective:
        self._expect(TokenKind.BANG)
        keyword = self._expect(TokenKind.IDENT)
        if keyword.text != "import":
            raise SpecSyntaxError(
                f"unknown directive !{keyword.text}", keyword.line, keyword.column
            )
        self._expect(TokenKind.LPAREN)
        module = self._expect(TokenKind.STRING)
        self._expect(TokenKind.RPAREN)
        return ImportDirective(module.text)

    def _statement(self):
        if (
            self._peek().kind is TokenKind.IDENT
            and self._tokens[self._pos + 1].kind is TokenKind.EQUALS
        ):
            name = self._advance().text
            self._expect(TokenKind.EQUALS)
            return Assign(name, self._expr())
        expr = self._expr()
        if not isinstance(expr, (CallExpr, RefExpr, AllExpr)):
            tok = self._peek()
            raise SpecSyntaxError(
                "top-level statement must be a selector expression",
                tok.line,
                tok.column,
            )
        return expr

    def _expr(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.IDENT:
            self._advance()
            self._expect(TokenKind.LPAREN)
            args: list[Expr] = []
            while self._peek().kind is not TokenKind.RPAREN:
                if self._peek().kind is TokenKind.EOF:
                    raise SpecSyntaxError(
                        f"unterminated argument list of {tok.text!r}",
                        tok.line,
                        tok.column,
                    )
                args.append(self._expr())
                if self._peek().kind is TokenKind.COMMA:
                    self._advance()
            self._expect(TokenKind.RPAREN)
            return CallExpr(tok.text, tuple(args))
        if tok.kind is TokenKind.REF:
            self._advance()
            return RefExpr(tok.text)
        if tok.kind is TokenKind.ALL:
            self._advance()
            return AllExpr()
        if tok.kind is TokenKind.STRING:
            self._advance()
            return StrLit(tok.text)
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return NumLit(float(tok.text))
        raise SpecSyntaxError(
            f"unexpected token {tok.text!r} in expression", tok.line, tok.column
        )


def parse_spec(text: str) -> SpecFile:
    """Parse a ``.capi`` specification source string."""
    return Parser(text).parse()
