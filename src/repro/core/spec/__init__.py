"""CaPI selection-DSL frontend: lexer, parser, AST, module imports."""

from repro.core.spec.ast import (
    AllExpr,
    Assign,
    CallExpr,
    ImportDirective,
    NumLit,
    RefExpr,
    SpecFile,
    StrLit,
)
from repro.core.spec.lexer import tokenize
from repro.core.spec.modules import ModuleResolver, load_spec, load_spec_file
from repro.core.spec.parser import parse_spec

__all__ = [
    "AllExpr",
    "Assign",
    "CallExpr",
    "ImportDirective",
    "ModuleResolver",
    "NumLit",
    "RefExpr",
    "SpecFile",
    "StrLit",
    "load_spec",
    "load_spec_file",
    "parse_spec",
    "tokenize",
]
