"""Call-path selectors: reachability-based selection over the call graph.

All traversals run over interned ids with the graph's preallocated
visited-array sweeps — no per-node string hashing on the hot path.
"""

from __future__ import annotations

import numpy as np

from repro._util import COMPARE_OPS, compare
from repro.cg.analysis import call_depth_dense, call_path_between_ids
from repro.core.selectors.base import EvalContext, Selector
from repro.errors import SpecSemanticError


class OnCallPathTo(Selector):
    """The input functions plus all their transitive callers.

    This is how "functions on a call path to an MPI operation" selections
    are built (paper §VI evaluation specs).
    """

    def __init__(self, inner: Selector):
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.reaching_ids(ctx.evaluate_ids(self.inner))


class OnCallPathFrom(Selector):
    """The input functions plus everything transitively reachable."""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.reachable_ids(ctx.evaluate_ids(self.inner))


class CallPath(Selector):
    """Functions on some path from a source to a target selection.

    The bundled ``mpi.capi`` defines ``mpi_comm = callPath(%main_entry,
    %mpi_ops)`` — "all functions on a call path from main to any MPI
    communication operation" (paper Listing 1 caption).
    """

    def __init__(self, sources: Selector, targets: Selector):
        self.sources = sources
        self.targets = targets

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return call_path_between_ids(
            ctx.graph,
            ctx.evaluate_ids(self.sources),
            ctx.evaluate_ids(self.targets),
        )


class CallDepth(Selector):
    """Filter by shortest call depth from the entry function.

    ``callDepth("<=", 3, %%)`` keeps functions within 3 calls of main.
    """

    def __init__(self, op: str, depth: float, inner: Selector, *, root: str = "main"):
        try:
            compare(op, 0, 0)
        except ValueError as exc:
            raise SpecSemanticError(str(exc)) from exc
        self.op = op
        self.depth = depth
        self.inner = inner
        self.root = root

    def select_ids(self, ctx: EvalContext) -> set[int]:
        root_id = ctx.graph.id_of(self.root)
        if root_id is None:
            return set()
        inner = ctx.evaluate_ids(self.inner)
        if not inner:
            return set()
        # dense BFS depths (-1 unreachable) + one vectorised comparison
        # (the operator.* functions in COMPARE_OPS work elementwise)
        depths = call_depth_dense(ctx.graph, root_id)
        candidates = np.fromiter(inner, dtype=np.int64, count=len(inner))
        reached = depths[candidates]
        keep = (reached >= 0) & COMPARE_OPS[self.op](reached, self.depth)
        return set(candidates[keep].tolist())
