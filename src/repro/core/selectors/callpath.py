"""Call-path selectors: reachability-based selection over the call graph.

All traversals run over interned ids with the graph's preallocated
visited-array sweeps — no per-node string hashing on the hot path.
"""

from __future__ import annotations

import numpy as np

from repro._util import COMPARE_OPS, compare
from repro.cg.analysis import (
    call_depth_dense,
    call_path_between_ids,
    reach_ids_frozen,
)
from repro.core.selectors.base import EvalContext, Selector, union_support
from repro.errors import SpecSemanticError


class OnCallPathTo(Selector):
    """The input functions plus all their transitive callers.

    This is how "functions on a call path to an MPI operation" selections
    are built (paper §VI evaluation specs).
    """

    def __init__(self, inner: Selector):
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.reaching_ids(ctx.evaluate_ids(self.inner))

    def delta_supports(self, ctx: EvalContext):
        supports = ctx.supports_of(self.inner)
        if supports is None:
            return None
        # any edge that grows the reaching set has its callee already in
        # it, so the result is its own structural support
        return (supports[0], union_support(supports[1], ctx.evaluate_ids(self)))


class OnCallPathFrom(Selector):
    """The input functions plus everything transitively reachable."""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.reachable_ids(ctx.evaluate_ids(self.inner))

    def delta_supports(self, ctx: EvalContext):
        supports = ctx.supports_of(self.inner)
        if supports is None:
            return None
        # mirror image: an edge growing the reachable set starts inside it
        return (supports[0], union_support(supports[1], ctx.evaluate_ids(self)))


class CallPath(Selector):
    """Functions on some path from a source to a target selection.

    The bundled ``mpi.capi`` defines ``mpi_comm = callPath(%main_entry,
    %mpi_ops)`` — "all functions on a call path from main to any MPI
    communication operation" (paper Listing 1 caption).
    """

    def __init__(self, sources: Selector, targets: Selector):
        self.sources = sources
        self.targets = targets

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return call_path_between_ids(
            ctx.graph,
            ctx.evaluate_ids(self.sources),
            ctx.evaluate_ids(self.targets),
        )

    def delta_supports(self, ctx: EvalContext):
        src_sup = ctx.supports_of(self.sources)
        tgt_sup = ctx.supports_of(self.targets)
        if src_sup is None or tgt_sup is None:
            return None
        # the intersection can grow through an edge landing in either
        # sweep, so the structural support is their union (not the
        # result): forward cone of the sources plus backward cone of the
        # targets
        graph = ctx.graph
        cone = frozenset(
            graph.reachable_ids(ctx.evaluate_ids(self.sources))
            | graph.reaching_ids(ctx.evaluate_ids(self.targets))
        )
        return (
            union_support(src_sup[0], tgt_sup[0]),
            union_support(union_support(src_sup[1], tgt_sup[1]), cone),
        )


class CallDepth(Selector):
    """Filter by shortest call depth from the entry function.

    ``callDepth("<=", 3, %%)`` keeps functions within 3 calls of main.
    """

    def __init__(self, op: str, depth: float, inner: Selector, *, root: str = "main"):
        try:
            compare(op, 0, 0)
        except ValueError as exc:
            raise SpecSemanticError(str(exc)) from exc
        self.op = op
        self.depth = depth
        self.inner = inner
        self.root = root

    def select_ids(self, ctx: EvalContext) -> set[int]:
        root_id = ctx.graph.id_of(self.root)
        if root_id is None:
            return set()
        inner = ctx.evaluate_ids(self.inner)
        if not inner:
            return set()
        # dense BFS depths (-1 unreachable) + one vectorised comparison
        # (the operator.* functions in COMPARE_OPS work elementwise)
        depths = call_depth_dense(ctx.graph, root_id)
        candidates = np.fromiter(inner, dtype=np.int64, count=len(inner))
        reached = depths[candidates]
        keep = (reached >= 0) & COMPARE_OPS[self.op](reached, self.depth)
        return set(candidates[keep].tolist())

    def delta_supports(self, ctx: EvalContext):
        supports = ctx.supports_of(self.inner)
        if supports is None:
            return None
        root_id = ctx.graph.id_of(self.root)
        if root_id is None:
            # no root means a constant empty result until nodes change,
            # and node adds invalidate wholesale anyway
            return supports
        # shortest depths can only move when an edge touches the root's
        # forward cone; the memoised frozenset is shared across entries
        cone = reach_ids_frozen(ctx.graph, root_id)
        return (supports[0], union_support(supports[1], cone))
