"""Call-path selectors: reachability-based selection over the call graph."""

from __future__ import annotations

from repro._util import compare
from repro.cg.analysis import call_depths_from, call_path_between
from repro.core.selectors.base import EvalContext, Selector
from repro.errors import SpecSemanticError


class OnCallPathTo(Selector):
    """The input functions plus all their transitive callers.

    This is how "functions on a call path to an MPI operation" selections
    are built (paper §VI evaluation specs).
    """

    def __init__(self, inner: Selector):
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return set(ctx.graph.reaching(ctx.evaluate(self.inner)))


class OnCallPathFrom(Selector):
    """The input functions plus everything transitively reachable."""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return set(ctx.graph.reachable_from(ctx.evaluate(self.inner)))


class CallPath(Selector):
    """Functions on some path from a source to a target selection.

    The bundled ``mpi.capi`` defines ``mpi_comm = callPath(%main_entry,
    %mpi_ops)`` — "all functions on a call path from main to any MPI
    communication operation" (paper Listing 1 caption).
    """

    def __init__(self, sources: Selector, targets: Selector):
        self.sources = sources
        self.targets = targets

    def select(self, ctx: EvalContext) -> set[str]:
        return call_path_between(
            ctx.graph, ctx.evaluate(self.sources), ctx.evaluate(self.targets)
        )


class CallDepth(Selector):
    """Filter by shortest call depth from the entry function.

    ``callDepth("<=", 3, %%)`` keeps functions within 3 calls of main.
    """

    def __init__(self, op: str, depth: float, inner: Selector, *, root: str = "main"):
        try:
            compare(op, 0, 0)
        except ValueError as exc:
            raise SpecSemanticError(str(exc)) from exc
        self.op = op
        self.depth = depth
        self.inner = inner
        self.root = root

    def select(self, ctx: EvalContext) -> set[str]:
        depths = call_depths_from(ctx.graph, self.root)
        return {
            n
            for n in ctx.evaluate(self.inner)
            if n in depths and compare(self.op, depths[n], self.depth)
        }
