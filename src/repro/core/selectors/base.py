"""Selector protocol and evaluation context.

A selector determines "the set of functions from the given call graph
that match its inclusion conditions" (paper §III-A).  Selectors form a
DAG: combinators take other selectors as inputs, and named instances may
feed several consumers.  Evaluation memoises per-instance results in the
context so shared sub-pipelines are computed once.

Evaluation runs over the call graph's interned integer ids end-to-end —
combinators do integer set-algebra, traversal selectors sweep id
adjacency — and results are converted to function names only at the
:class:`~repro.core.pipeline.SelectionResult` boundary (or through the
string-typed :meth:`EvalContext.evaluate` /:meth:`Selector.evaluate`
compatibility surface).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cg.graph import CallGraph


@dataclass
class EvalContext:
    """Evaluation state for one pipeline run over one call graph."""

    graph: CallGraph
    _cache: dict[int, frozenset[int]] = field(default_factory=dict)
    #: evaluation statistics: selector description -> result size
    trace: list[tuple[str, int]] = field(default_factory=list)

    def evaluate_ids(self, selector: "Selector") -> frozenset[int]:
        """Evaluate to the interned-id set (the fast path)."""
        key = id(selector)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        select_ids = getattr(selector, "select_ids", None)
        if select_ids is not None:
            result = frozenset(select_ids(self))
        else:
            # duck-typed legacy selector exposing only name-based select()
            result = frozenset(self.graph.names_to_ids(selector.select(self)))
        self._cache[key] = result
        self.trace.append((selector.describe(), len(result)))
        return result

    def evaluate(self, selector: "Selector") -> frozenset[str]:
        """Evaluate to function names (boundary/compatibility surface)."""
        return self.graph.ids_to_names(self.evaluate_ids(selector))


class Selector:
    """One node of the selection pipeline.

    Subclasses implement :meth:`select_ids` (preferred — integer ids) or
    the legacy :meth:`select` (function names); each has a default that
    bridges to the other.
    """

    def select_ids(self, ctx: EvalContext) -> set[int]:
        """Compute the selected id set (uncached)."""
        if type(self).select is Selector.select:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither select_ids nor select"
            )
        return ctx.graph.names_to_ids(self.select(ctx))

    def select(self, ctx: EvalContext) -> set[str]:
        """Compute the selected function-name set (uncached)."""
        return set(ctx.graph.ids_to_names(self.select_ids(ctx)))

    def describe(self) -> str:
        return type(self).__name__

    # convenience for tests / embedding
    def evaluate(self, graph: CallGraph) -> frozenset[str]:
        return EvalContext(graph).evaluate(self)


class AllSelector(Selector):
    """``%%`` — every function in the call graph."""

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.node_id_set()

    def describe(self) -> str:
        return "%%"


class NamedRef(Selector):
    """Wrapper giving a selector instance its DSL name (diagnostics)."""

    def __init__(self, name: str, inner: Selector):
        self.name = name
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.evaluate_ids(self.inner)

    def describe(self) -> str:
        return f"%{self.name}"
