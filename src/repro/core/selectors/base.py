"""Selector protocol and evaluation context.

A selector determines "the set of functions from the given call graph
that match its inclusion conditions" (paper §III-A).  Selectors form a
DAG: combinators take other selectors as inputs, and named instances may
feed several consumers.  Evaluation memoises per-instance results in the
context so shared sub-pipelines are computed once.

Evaluation runs over the call graph's interned integer ids end-to-end —
combinators do integer set-algebra, traversal selectors sweep id
adjacency — and results are converted to function names only at the
:class:`~repro.core.pipeline.SelectionResult` boundary (or through the
string-typed :meth:`EvalContext.evaluate` /:meth:`Selector.evaluate`
compatibility surface).

Per-context memoisation keys on selector *identity* (one pipeline run
reuses shared sub-pipelines).  On top of that, an opt-in
:class:`CrossRunCache` persists results **across** evaluation contexts:
selectors built from a spec carry a structural ``cache_key`` (the
canonical repr of their defining expression), and the cache is bound to
one call graph *version*.  Repeated ``select_all()`` sweeps over an
unchanged graph (rank sweeps, the Table I/II harnesses) become
near-free.

On a version bump the cache consults the graph's mutation journal
(:meth:`~repro.cg.graph.CallGraph.delta_since`) instead of dropping
wholesale: each stored result carries its **delta supports** — the id
sets whose metadata / structure the result depends on, reported by
:meth:`Selector.delta_supports` — and entries whose supports are
disjoint from the delta's touched ids survive the edit.  Universe
changes (node adds/removals) and journal truncation still drop the
store wholesale, which keeps the soundness argument local to
edge/reason/meta deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cg.graph import CallGraph


#: default LRU cap on structural-key entries within one graph version —
#: high enough that a realistic working set of distinct specs stays warm,
#: low enough that an endless stream of one-off specs cannot grow the
#: store unboundedly between graph mutations
DEFAULT_CACHE_ENTRIES = 4096

#: largest *constructed* support set worth tracking — beyond this, the
#: per-delta disjointness checks cost more than recomputing the selector,
#: so ``supports_of`` degrades to ``None`` (drop on any delta).  Shared
#: references returned by :func:`union_support` bypass the cap: they cost
#: nothing to keep no matter their size.
SUPPORT_CAP = 131072

_EMPTY_SUPPORT: frozenset[int] = frozenset()


def union_support(a: frozenset[int], b: frozenset[int]) -> frozenset[int]:
    """Union of two support sets, sharing a reference when one is empty.

    Selector supports are dominated by a few huge reachable sets flowing
    unchanged through combinator chains; returning the non-empty operand
    instead of copying keeps paper-scale supports O(1) memory per entry.
    """
    if not a:
        return b
    if not b:
        return a
    return a | b


def combined_supports(
    ctx: "EvalContext", *selectors: "Selector"
) -> tuple[frozenset[int], frozenset[int]] | None:
    """Union the delta supports of several inputs; ``None`` poisons."""
    meta = _EMPTY_SUPPORT
    struct = _EMPTY_SUPPORT
    for selector in selectors:
        supports = ctx.supports_of(selector)
        if supports is None:
            return None
        meta = union_support(meta, supports[0])
        struct = union_support(struct, supports[1])
    return (meta, struct)


class CrossRunCache:
    """Selector results shared across pipeline runs on one graph.

    Soundness: selectors are pure functions of (expression, graph
    structure+metadata), so a result keyed by the structural expression
    key is valid for as long as the graph's :attr:`~repro.cg.graph.
    CallGraph.version` is unchanged.  Binding to a different graph
    object or observing a version bump drops the whole store.

    On a version bump of the *same* graph the journal is consulted: an
    edge/reason/meta delta keeps every entry whose recorded supports are
    disjoint from the delta's touched ids (``retained``/``dropped``
    count the outcome); universe changes and truncated journals drop the
    store wholesale, uncounted.

    Within one graph version the store is additionally LRU-capped at
    ``max_entries`` distinct structural keys: every distinct spec adds
    entries, so an uncapped store grows without bound under a stream of
    one-off queries.  ``hits`` and ``evictions`` count served reuses and
    capacity evictions for diagnostics.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        #: strong reference: keeps the bound graph alive so a recycled
        #: ``id()`` of a freed graph can never alias into this store
        self._graph: CallGraph | None = None
        self._version: int | None = None
        self._store: dict[str, frozenset[int]] = {}
        #: per-key delta supports: ``(meta_ids, struct_ids)`` or ``None``
        #: when unknown (such entries cannot survive any delta)
        self._supports: dict[
            str, tuple[frozenset[int], frozenset[int]] | None
        ] = {}
        #: cross-run hits served (diagnostics / tests)
        self.hits = 0
        #: entries dropped to keep the store within ``max_entries``
        #: (wholesale version drops are *not* counted here)
        self.evictions = 0
        #: entries that survived a delta-based invalidation
        self.retained = 0
        #: entries dropped by a delta-based invalidation (wholesale
        #: version drops are *not* counted here either)
        self.dropped = 0

    def store_for(self, graph: CallGraph) -> dict[str, frozenset[int]]:
        """The live store for ``graph``, invalidated on version change.

        A version bump of the already-bound graph goes through the
        mutation journal: when it can answer and the id universe is
        unchanged, only entries whose supports intersect the delta's
        touched ids are dropped.
        """
        version = graph.version
        if self._graph is graph and self._version == version:
            return self._store
        if self._graph is graph and self._store:
            delta = graph.delta_since(self._version)
            if delta is not None and not delta.universe_changed:
                self._retain(delta)
                self._version = version
                return self._store
        self._graph = graph
        self._version = version
        self._store = {}
        self._supports = {}
        return self._store

    def _retain(self, delta) -> None:
        """Drop exactly the entries the delta can affect."""
        meta_touched = delta.meta_touched
        struct_touched = delta.struct_touched
        keep: dict[str, frozenset[int]] = {}
        keep_supports: dict[
            str, tuple[frozenset[int], frozenset[int]] | None
        ] = {}
        for key, result in self._store.items():
            supports = self._supports.get(key)
            if supports is not None:
                meta_sup, struct_sup = supports
                if meta_sup.isdisjoint(meta_touched) and struct_sup.isdisjoint(
                    struct_touched
                ):
                    keep[key] = result
                    keep_supports[key] = supports
                    self.retained += 1
                    continue
            self.dropped += 1
        self._store = keep
        self._supports = keep_supports

    def get(self, key: str) -> frozenset[int] | None:
        """LRU lookup in the bound store; counts and refreshes hits."""
        hit = self._store.pop(key, None)
        if hit is None:
            return None
        self._store[key] = hit  # re-insert: most recently used
        self.hits += 1
        return hit

    def put(
        self,
        key: str,
        result: frozenset[int],
        supports: tuple[frozenset[int], frozenset[int]] | None = None,
    ) -> None:
        """Insert one result, evicting least-recently-used past the cap.

        ``supports`` records the ``(meta_ids, struct_ids)`` the result
        depends on; ``None`` marks the dependency set unknown, so the
        entry is dropped by the first delta-based invalidation.
        """
        store = self._store
        store.pop(key, None)
        store[key] = result
        self._supports[key] = supports
        while len(store) > self.max_entries:
            evicted = next(iter(store))
            store.pop(evicted)
            self._supports.pop(evicted, None)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)


@dataclass
class EvalContext:
    """Evaluation state for one pipeline run over one call graph."""

    graph: CallGraph
    _cache: dict[int, frozenset[int]] = field(default_factory=dict)
    #: per-instance memo of :meth:`supports_of` results
    _supports: dict[
        int, "tuple[frozenset[int], frozenset[int]] | None"
    ] = field(default_factory=dict)
    #: evaluation statistics: selector description -> result size
    trace: list[tuple[str, int]] = field(default_factory=list)
    #: optional cross-run cache (see :class:`CrossRunCache`), already
    #: bound to this context's graph version via :meth:`with_cross_run`
    cross_run: "CrossRunCache | None" = None

    @classmethod
    def with_cross_run(
        cls, graph: CallGraph, cache: "CrossRunCache"
    ) -> "EvalContext":
        ctx = cls(graph)
        cache.store_for(graph)  # bind (drops the store on version change)
        ctx.cross_run = cache
        return ctx

    def evaluate_ids(self, selector: "Selector") -> frozenset[int]:
        """Evaluate to the interned-id set (the fast path)."""
        key = id(selector)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cross = self.cross_run
        struct_key = getattr(selector, "cache_key", None) if cross is not None else None
        if struct_key is not None:
            hit = cross.get(struct_key)
            if hit is not None:
                self._cache[key] = hit
                self.trace.append((selector.describe(), len(hit)))
                return hit
        select_ids = getattr(selector, "select_ids", None)
        if select_ids is not None:
            result = frozenset(select_ids(self))
        else:
            # duck-typed legacy selector exposing only name-based select()
            result = frozenset(self.graph.names_to_ids(selector.select(self)))
        self._cache[key] = result
        if struct_key is not None:
            cross.put(struct_key, result, supports=self.supports_of(selector))
        self.trace.append((selector.describe(), len(result)))
        return result

    def supports_of(
        self, selector: "Selector"
    ) -> "tuple[frozenset[int], frozenset[int]] | None":
        """Delta supports of a selector, memoised per instance.

        ``(meta_ids, struct_ids)``: the result of ``selector`` can only
        change under an edge/reason/meta delta that touches one of these
        ids (universe changes invalidate everything regardless, so
        supports never need to account for new or removed nodes).
        ``None`` means the dependency set is unknown or too large to
        track (:data:`SUPPORT_CAP`) — such results drop on any delta.
        """
        key = id(selector)
        if key in self._supports:
            return self._supports[key]
        # recursion guard: a selector cycle degrades to "unknown"
        self._supports[key] = None
        supports = selector.delta_supports(self)
        if supports is not None:
            meta_sup, struct_sup = supports
            if len(meta_sup) > SUPPORT_CAP or len(struct_sup) > SUPPORT_CAP:
                supports = None
        self._supports[key] = supports
        return supports

    def evaluate(self, selector: "Selector") -> frozenset[str]:
        """Evaluate to function names (boundary/compatibility surface)."""
        return self.graph.ids_to_names(self.evaluate_ids(selector))


class Selector:
    """One node of the selection pipeline.

    Subclasses implement :meth:`select_ids` (preferred — integer ids) or
    the legacy :meth:`select` (function names); each has a default that
    bridges to the other.
    """

    def select_ids(self, ctx: EvalContext) -> set[int]:
        """Compute the selected id set (uncached)."""
        if type(self).select is Selector.select:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither select_ids nor select"
            )
        return ctx.graph.names_to_ids(self.select(ctx))

    def select(self, ctx: EvalContext) -> set[str]:
        """Compute the selected function-name set (uncached)."""
        return set(ctx.graph.ids_to_names(self.select_ids(ctx)))

    def delta_supports(
        self, ctx: EvalContext
    ) -> "tuple[frozenset[int], frozenset[int]] | None":
        """``(meta_ids, struct_ids)`` this selector's result depends on.

        The contract (for deltas that do not change the id universe —
        those invalidate wholesale upstream): any edit sequence touching
        only metadata of ids outside ``meta_ids`` and structure of ids
        outside ``struct_ids`` leaves :meth:`select_ids` unchanged.
        ``None`` (the conservative default) declares the dependency set
        unknown.  Access through :meth:`EvalContext.supports_of`, never
        directly — the memo there doubles as the recursion guard.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__

    # convenience for tests / embedding
    def evaluate(self, graph: CallGraph) -> frozenset[str]:
        return EvalContext(graph).evaluate(self)


class AllSelector(Selector):
    """``%%`` — every function in the call graph."""

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.node_id_set()

    def delta_supports(self, ctx: EvalContext):
        # the id universe itself; only adds/removes change it, and those
        # invalidate wholesale before supports are even consulted
        return (_EMPTY_SUPPORT, _EMPTY_SUPPORT)

    def describe(self) -> str:
        return "%%"


class NamedRef(Selector):
    """Wrapper giving a selector instance its DSL name (diagnostics)."""

    def __init__(self, name: str, inner: Selector):
        self.name = name
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.evaluate_ids(self.inner)

    def delta_supports(self, ctx: EvalContext):
        return ctx.supports_of(self.inner)

    def describe(self) -> str:
        return f"%{self.name}"
