"""Selector protocol and evaluation context.

A selector determines "the set of functions from the given call graph
that match its inclusion conditions" (paper §III-A).  Selectors form a
DAG: combinators take other selectors as inputs, and named instances may
feed several consumers.  Evaluation memoises per-instance results in the
context so shared sub-pipelines are computed once.

Evaluation runs over the call graph's interned integer ids end-to-end —
combinators do integer set-algebra, traversal selectors sweep id
adjacency — and results are converted to function names only at the
:class:`~repro.core.pipeline.SelectionResult` boundary (or through the
string-typed :meth:`EvalContext.evaluate` /:meth:`Selector.evaluate`
compatibility surface).

Per-context memoisation keys on selector *identity* (one pipeline run
reuses shared sub-pipelines).  On top of that, an opt-in
:class:`CrossRunCache` persists results **across** evaluation contexts:
selectors built from a spec carry a structural ``cache_key`` (the
canonical repr of their defining expression), and the cache is bound to
one call graph *version* — any graph mutation invalidates it wholesale.
Repeated ``select_all()`` sweeps over an unchanged graph (rank sweeps,
the Table I/II harnesses) become near-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cg.graph import CallGraph


#: default LRU cap on structural-key entries within one graph version —
#: high enough that a realistic working set of distinct specs stays warm,
#: low enough that an endless stream of one-off specs cannot grow the
#: store unboundedly between graph mutations
DEFAULT_CACHE_ENTRIES = 4096


class CrossRunCache:
    """Selector results shared across pipeline runs on one graph.

    Soundness: selectors are pure functions of (expression, graph
    structure+metadata), so a result keyed by the structural expression
    key is valid for as long as the graph's :attr:`~repro.cg.graph.
    CallGraph.version` is unchanged.  Binding to a different graph
    object or observing a version bump drops the whole store.

    Within one graph version the store is additionally LRU-capped at
    ``max_entries`` distinct structural keys: every distinct spec adds
    entries, so an uncapped store grows without bound under a stream of
    one-off queries.  ``hits`` and ``evictions`` count served reuses and
    capacity evictions for diagnostics.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        #: strong reference: keeps the bound graph alive so a recycled
        #: ``id()`` of a freed graph can never alias into this store
        self._graph: CallGraph | None = None
        self._version: int | None = None
        self._store: dict[str, frozenset[int]] = {}
        #: cross-run hits served (diagnostics / tests)
        self.hits = 0
        #: entries dropped to keep the store within ``max_entries``
        #: (wholesale version drops are *not* counted here)
        self.evictions = 0

    def store_for(self, graph: CallGraph) -> dict[str, frozenset[int]]:
        """The live store for ``graph``, invalidated on version change."""
        version = graph.version
        if self._graph is not graph or self._version != version:
            self._graph = graph
            self._version = version
            self._store = {}
        return self._store

    def get(self, key: str) -> frozenset[int] | None:
        """LRU lookup in the bound store; counts and refreshes hits."""
        hit = self._store.pop(key, None)
        if hit is None:
            return None
        self._store[key] = hit  # re-insert: most recently used
        self.hits += 1
        return hit

    def put(self, key: str, result: frozenset[int]) -> None:
        """Insert one result, evicting least-recently-used past the cap."""
        store = self._store
        store.pop(key, None)
        store[key] = result
        while len(store) > self.max_entries:
            store.pop(next(iter(store)))
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)


@dataclass
class EvalContext:
    """Evaluation state for one pipeline run over one call graph."""

    graph: CallGraph
    _cache: dict[int, frozenset[int]] = field(default_factory=dict)
    #: evaluation statistics: selector description -> result size
    trace: list[tuple[str, int]] = field(default_factory=list)
    #: optional cross-run cache (see :class:`CrossRunCache`), already
    #: bound to this context's graph version via :meth:`with_cross_run`
    cross_run: "CrossRunCache | None" = None

    @classmethod
    def with_cross_run(
        cls, graph: CallGraph, cache: "CrossRunCache"
    ) -> "EvalContext":
        ctx = cls(graph)
        cache.store_for(graph)  # bind (drops the store on version change)
        ctx.cross_run = cache
        return ctx

    def evaluate_ids(self, selector: "Selector") -> frozenset[int]:
        """Evaluate to the interned-id set (the fast path)."""
        key = id(selector)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cross = self.cross_run
        struct_key = getattr(selector, "cache_key", None) if cross is not None else None
        if struct_key is not None:
            hit = cross.get(struct_key)
            if hit is not None:
                self._cache[key] = hit
                self.trace.append((selector.describe(), len(hit)))
                return hit
        select_ids = getattr(selector, "select_ids", None)
        if select_ids is not None:
            result = frozenset(select_ids(self))
        else:
            # duck-typed legacy selector exposing only name-based select()
            result = frozenset(self.graph.names_to_ids(selector.select(self)))
        self._cache[key] = result
        if struct_key is not None:
            cross.put(struct_key, result)
        self.trace.append((selector.describe(), len(result)))
        return result

    def evaluate(self, selector: "Selector") -> frozenset[str]:
        """Evaluate to function names (boundary/compatibility surface)."""
        return self.graph.ids_to_names(self.evaluate_ids(selector))


class Selector:
    """One node of the selection pipeline.

    Subclasses implement :meth:`select_ids` (preferred — integer ids) or
    the legacy :meth:`select` (function names); each has a default that
    bridges to the other.
    """

    def select_ids(self, ctx: EvalContext) -> set[int]:
        """Compute the selected id set (uncached)."""
        if type(self).select is Selector.select:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither select_ids nor select"
            )
        return ctx.graph.names_to_ids(self.select(ctx))

    def select(self, ctx: EvalContext) -> set[str]:
        """Compute the selected function-name set (uncached)."""
        return set(ctx.graph.ids_to_names(self.select_ids(ctx)))

    def describe(self) -> str:
        return type(self).__name__

    # convenience for tests / embedding
    def evaluate(self, graph: CallGraph) -> frozenset[str]:
        return EvalContext(graph).evaluate(self)


class AllSelector(Selector):
    """``%%`` — every function in the call graph."""

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.node_id_set()

    def describe(self) -> str:
        return "%%"


class NamedRef(Selector):
    """Wrapper giving a selector instance its DSL name (diagnostics)."""

    def __init__(self, name: str, inner: Selector):
        self.name = name
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.evaluate_ids(self.inner)

    def describe(self) -> str:
        return f"%{self.name}"
