"""Selector protocol and evaluation context.

A selector determines "the set of functions from the given call graph
that match its inclusion conditions" (paper §III-A).  Selectors form a
DAG: combinators take other selectors as inputs, and named instances may
feed several consumers.  Evaluation memoises per-instance results in the
context so shared sub-pipelines are computed once.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cg.graph import CallGraph


@dataclass
class EvalContext:
    """Evaluation state for one pipeline run over one call graph."""

    graph: CallGraph
    _cache: dict[int, frozenset[str]] = field(default_factory=dict)
    #: evaluation statistics: selector description -> result size
    trace: list[tuple[str, int]] = field(default_factory=list)

    def evaluate(self, selector: "Selector") -> frozenset[str]:
        key = id(selector)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = frozenset(selector.select(self))
        self._cache[key] = result
        self.trace.append((selector.describe(), len(result)))
        return result


class Selector(abc.ABC):
    """One node of the selection pipeline."""

    @abc.abstractmethod
    def select(self, ctx: EvalContext) -> set[str]:
        """Compute the selected function-name set (uncached)."""

    def describe(self) -> str:
        return type(self).__name__

    # convenience for tests / embedding
    def evaluate(self, graph: CallGraph) -> frozenset[str]:
        return EvalContext(graph).evaluate(self)


class AllSelector(Selector):
    """``%%`` — every function in the call graph."""

    def select(self, ctx: EvalContext) -> set[str]:
        return ctx.graph.node_names()

    def describe(self) -> str:
        return "%%"


class NamedRef(Selector):
    """Wrapper giving a selector instance its DSL name (diagnostics)."""

    def __init__(self, name: str, inner: Selector):
        self.name = name
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return set(ctx.evaluate(self.inner))

    def describe(self) -> str:
        return f"%{self.name}"
