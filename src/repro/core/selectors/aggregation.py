"""Statement-aggregation selection (Iwainsky & Bischof [16], paper §II-B).

"The local number of code statements is aggregated over the whole call
chain.  Functions are selected for instrumentation if the aggregated
statement count reaches a pre-determined threshold."  This heuristic is
also the basis of PIRA's initial selection.
"""

from __future__ import annotations

from repro.cg.analysis import aggregate_statement_ids
from repro.core.selectors.base import EvalContext, Selector


class StatementAggregation(Selector):
    """``statementAggregation(threshold, input)`` rooted at ``main``."""

    def __init__(self, threshold: float, inner: Selector, *, root: str = "main"):
        self.threshold = threshold
        self.inner = inner
        self.root = root

    def select_ids(self, ctx: EvalContext) -> set[int]:
        root_id = ctx.graph.id_of(self.root)
        aggregated = (
            aggregate_statement_ids(ctx.graph, root_id) if root_id is not None else {}
        )
        threshold = self.threshold
        return {
            nid
            for nid in ctx.evaluate_ids(self.inner)
            if aggregated.get(nid, 0) >= threshold
        }

    def describe(self) -> str:
        return f"statementAggregation(>={self.threshold:g})"
