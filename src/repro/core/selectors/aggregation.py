"""Statement-aggregation selection (Iwainsky & Bischof [16], paper §II-B).

"The local number of code statements is aggregated over the whole call
chain.  Functions are selected for instrumentation if the aggregated
statement count reaches a pre-determined threshold."  This heuristic is
also the basis of PIRA's initial selection.
"""

from __future__ import annotations

import numpy as np

from repro.cg.analysis import aggregate_statement_dense, reach_ids_frozen
from repro.core.selectors.base import EvalContext, Selector, union_support


class StatementAggregation(Selector):
    """``statementAggregation(threshold, input)`` rooted at ``main``."""

    def __init__(self, threshold: float, inner: Selector, *, root: str = "main"):
        self.threshold = threshold
        self.inner = inner
        self.root = root

    def select_ids(self, ctx: EvalContext) -> set[int]:
        root_id = ctx.graph.id_of(self.root)
        inner = ctx.evaluate_ids(self.inner)
        if root_id is None:
            # no root: every total is 0, same as the dict path's default
            return set(inner) if 0 >= self.threshold else set()
        if not inner:
            return set()
        # dense per-id totals (0 where unreached) + one vectorised filter
        aggregated = aggregate_statement_dense(ctx.graph, root_id)
        candidates = np.fromiter(inner, dtype=np.int64, count=len(inner))
        kept = candidates[aggregated[candidates] >= self.threshold]
        return set(kept.tolist())

    def delta_supports(self, ctx: EvalContext):
        supports = ctx.supports_of(self.inner)
        if supports is None:
            return None
        root_id = ctx.graph.id_of(self.root)
        if root_id is None:
            return supports
        # aggregated totals read both the statement metadata and the
        # path structure of everything in the root's forward cone
        cone = reach_ids_frozen(ctx.graph, root_id)
        return (
            union_support(supports[0], cone),
            union_support(supports[1], cone),
        )

    def describe(self) -> str:
        return f"statementAggregation(>={self.threshold:g})"
