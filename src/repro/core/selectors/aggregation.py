"""Statement-aggregation selection (Iwainsky & Bischof [16], paper §II-B).

"The local number of code statements is aggregated over the whole call
chain.  Functions are selected for instrumentation if the aggregated
statement count reaches a pre-determined threshold."  This heuristic is
also the basis of PIRA's initial selection.
"""

from __future__ import annotations

import numpy as np

from repro.cg.analysis import aggregate_statement_dense
from repro.core.selectors.base import EvalContext, Selector


class StatementAggregation(Selector):
    """``statementAggregation(threshold, input)`` rooted at ``main``."""

    def __init__(self, threshold: float, inner: Selector, *, root: str = "main"):
        self.threshold = threshold
        self.inner = inner
        self.root = root

    def select_ids(self, ctx: EvalContext) -> set[int]:
        root_id = ctx.graph.id_of(self.root)
        inner = ctx.evaluate_ids(self.inner)
        if root_id is None:
            # no root: every total is 0, same as the dict path's default
            return set(inner) if 0 >= self.threshold else set()
        if not inner:
            return set()
        # dense per-id totals (0 where unreached) + one vectorised filter
        aggregated = aggregate_statement_dense(ctx.graph, root_id)
        candidates = np.fromiter(inner, dtype=np.int64, count=len(inner))
        kept = candidates[aggregated[candidates] >= self.threshold]
        return set(kept.tolist())

    def describe(self) -> str:
        return f"statementAggregation(>={self.threshold:g})"
