"""Statement-aggregation selection (Iwainsky & Bischof [16], paper §II-B).

"The local number of code statements is aggregated over the whole call
chain.  Functions are selected for instrumentation if the aggregated
statement count reaches a pre-determined threshold."  This heuristic is
also the basis of PIRA's initial selection.
"""

from __future__ import annotations

from repro.cg.analysis import aggregate_statements
from repro.core.selectors.base import EvalContext, Selector


class StatementAggregation(Selector):
    """``statementAggregation(threshold, input)`` rooted at ``main``."""

    def __init__(self, threshold: float, inner: Selector, *, root: str = "main"):
        self.threshold = threshold
        self.inner = inner
        self.root = root

    def select(self, ctx: EvalContext) -> set[str]:
        aggregated = aggregate_statements(ctx.graph, self.root)
        return {
            n
            for n in ctx.evaluate(self.inner)
            if aggregated.get(n, 0) >= self.threshold
        }

    def describe(self) -> str:
        return f"statementAggregation(>={self.threshold:g})"
