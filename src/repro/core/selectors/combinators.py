"""Set-algebra combinators: join, subtract, intersect, complement.

All four operate on interned-id sets, so the set-algebra is over small
ints regardless of function-name length.  Their delta supports are the
union of their inputs' supports: pure set-algebra adds no graph
dependency of its own.
"""

from __future__ import annotations

from repro.core.selectors.base import EvalContext, Selector, combined_supports


class Join(Selector):
    """Union of any number of input selectors (paper's ``join``)."""

    def __init__(self, *inputs: Selector):
        self.inputs = inputs

    def select_ids(self, ctx: EvalContext) -> set[int]:
        out: set[int] = set()
        for sel in self.inputs:
            out |= ctx.evaluate_ids(sel)
        return out

    def delta_supports(self, ctx: EvalContext):
        return combined_supports(ctx, *self.inputs)

    def describe(self) -> str:
        return f"join/{len(self.inputs)}"


class Subtract(Selector):
    """Set difference: first input minus all following inputs."""

    def __init__(self, base: Selector, *removed: Selector):
        self.base = base
        self.removed = removed

    def select_ids(self, ctx: EvalContext) -> set[int]:
        out = set(ctx.evaluate_ids(self.base))
        for sel in self.removed:
            out -= ctx.evaluate_ids(sel)
        return out

    def delta_supports(self, ctx: EvalContext):
        return combined_supports(ctx, self.base, *self.removed)


class Intersect(Selector):
    """Intersection of all inputs."""

    def __init__(self, *inputs: Selector):
        if not inputs:
            raise ValueError("intersect needs at least one input")
        self.inputs = inputs

    def select_ids(self, ctx: EvalContext) -> set[int]:
        out = set(ctx.evaluate_ids(self.inputs[0]))
        for sel in self.inputs[1:]:
            out &= ctx.evaluate_ids(sel)
        return out

    def delta_supports(self, ctx: EvalContext):
        return combined_supports(ctx, *self.inputs)


class Complement(Selector):
    """All functions not selected by the input."""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        return ctx.graph.node_id_set() - ctx.evaluate_ids(self.inner)

    def delta_supports(self, ctx: EvalContext):
        # the universe term only moves on node adds/removals, which
        # invalidate wholesale before supports are consulted
        return combined_supports(ctx, self.inner)
