"""Structural/property selectors: headers, inline, names, paths, kinds.

All filters iterate interned ids and read metadata through the graph's
id-indexed node table; only the regex selectors materialise names.
"""

from __future__ import annotations

import re

from repro.core.selectors.base import EvalContext, Selector, union_support
from repro.errors import SpecSemanticError


def _meta_filter_supports(ctx: EvalContext, inner: Selector):
    """Supports of a per-candidate metadata filter over ``inner``."""
    supports = ctx.supports_of(inner)
    if supports is None:
        return None
    return (
        union_support(supports[0], ctx.evaluate_ids(inner)),
        supports[1],
    )


class _MetaFlag(Selector):
    """Base for selectors filtering on one boolean NodeMeta attribute."""

    _attr = ""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        column = ctx.graph.meta_column(self._attr)
        return {nid for nid in ctx.evaluate_ids(self.inner) if column[nid]}

    def delta_supports(self, ctx: EvalContext):
        return _meta_filter_supports(ctx, self.inner)


class InSystemHeader(_MetaFlag):
    """Functions defined in system headers (paper Listing 1)."""

    _attr = "in_system_header"


class InlineSpecified(_MetaFlag):
    """Functions carrying the ``inline`` keyword.

    Note the paper's §V-E caveat: the keyword "does not necessarily
    coincide with the final inlining decisions made by the compiler" —
    this selector sees only the source-level marker.
    """

    _attr = "inline_marked"


class VirtualFunctions(_MetaFlag):
    """Virtual methods (bases and overrides)."""

    _attr = "is_virtual"


class DefinedFunctions(_MetaFlag):
    """Functions with a body (excludes declaration-only CG nodes)."""

    _attr = "has_body"


class ByName(Selector):
    """Functions whose name matches an anchored regular expression."""

    def __init__(self, pattern: str, inner: Selector):
        try:
            self._re = re.compile(pattern)
        except re.error as exc:
            raise SpecSemanticError(f"bad byName regex {pattern!r}: {exc}") from exc
        self.pattern = pattern
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        fullmatch = self._re.fullmatch
        name_of = ctx.graph.name_of
        return {
            nid for nid in ctx.evaluate_ids(self.inner) if fullmatch(name_of(nid))
        }

    def delta_supports(self, ctx: EvalContext):
        # a node's name is immutable for the lifetime of its id, so the
        # filter adds no dependency beyond the input's own
        return ctx.supports_of(self.inner)

    def describe(self) -> str:
        return f"byName({self.pattern})"


class ByPath(Selector):
    """Functions whose source path matches a regular expression."""

    def __init__(self, pattern: str, inner: Selector):
        try:
            self._re = re.compile(pattern)
        except re.error as exc:
            raise SpecSemanticError(f"bad byPath regex {pattern!r}: {exc}") from exc
        self.pattern = pattern
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        search = self._re.search
        column = ctx.graph.meta_column("source_path")
        return {
            nid for nid in ctx.evaluate_ids(self.inner) if search(column[nid])
        }

    def delta_supports(self, ctx: EvalContext):
        return _meta_filter_supports(ctx, self.inner)
