"""Structural/property selectors: headers, inline, names, paths, kinds."""

from __future__ import annotations

import re

from repro.core.selectors.base import EvalContext, Selector
from repro.errors import SpecSemanticError


class InSystemHeader(Selector):
    """Functions defined in system headers (paper Listing 1)."""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return {
            n
            for n in ctx.evaluate(self.inner)
            if n in ctx.graph and ctx.graph.node(n).meta.in_system_header
        }


class InlineSpecified(Selector):
    """Functions carrying the ``inline`` keyword.

    Note the paper's §V-E caveat: the keyword "does not necessarily
    coincide with the final inlining decisions made by the compiler" —
    this selector sees only the source-level marker.
    """

    def __init__(self, inner: Selector):
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return {
            n
            for n in ctx.evaluate(self.inner)
            if n in ctx.graph and ctx.graph.node(n).meta.inline_marked
        }


class ByName(Selector):
    """Functions whose name matches an anchored regular expression."""

    def __init__(self, pattern: str, inner: Selector):
        try:
            self._re = re.compile(pattern)
        except re.error as exc:
            raise SpecSemanticError(f"bad byName regex {pattern!r}: {exc}") from exc
        self.pattern = pattern
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return {n for n in ctx.evaluate(self.inner) if self._re.fullmatch(n)}

    def describe(self) -> str:
        return f"byName({self.pattern})"


class ByPath(Selector):
    """Functions whose source path matches a regular expression."""

    def __init__(self, pattern: str, inner: Selector):
        try:
            self._re = re.compile(pattern)
        except re.error as exc:
            raise SpecSemanticError(f"bad byPath regex {pattern!r}: {exc}") from exc
        self.pattern = pattern
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return {
            n
            for n in ctx.evaluate(self.inner)
            if n in ctx.graph and self._re.search(ctx.graph.node(n).meta.source_path)
        }


class VirtualFunctions(Selector):
    """Virtual methods (bases and overrides)."""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return {
            n
            for n in ctx.evaluate(self.inner)
            if n in ctx.graph and ctx.graph.node(n).meta.is_virtual
        }


class DefinedFunctions(Selector):
    """Functions with a body (excludes declaration-only CG nodes)."""

    def __init__(self, inner: Selector):
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        return {
            n
            for n in ctx.evaluate(self.inner)
            if n in ctx.graph and ctx.graph.node(n).meta.has_body
        }
