"""CaPI selector modules: base protocol, combinators, and the registry."""

from repro.core.selectors.base import AllSelector, EvalContext, NamedRef, Selector
from repro.core.selectors.aggregation import StatementAggregation
from repro.core.selectors.callpath import (
    CallDepth,
    CallPath,
    OnCallPathFrom,
    OnCallPathTo,
)
from repro.core.selectors.coarse import Coarse
from repro.core.selectors.combinators import Complement, Intersect, Join, Subtract
from repro.core.selectors.metrics import METRICS, MetricThreshold
from repro.core.selectors.registry import DEFAULT_REGISTRY, lookup
from repro.core.selectors.structural import (
    ByName,
    ByPath,
    DefinedFunctions,
    InlineSpecified,
    InSystemHeader,
    VirtualFunctions,
)

__all__ = [
    "AllSelector",
    "ByName",
    "ByPath",
    "CallDepth",
    "CallPath",
    "Coarse",
    "Complement",
    "DEFAULT_REGISTRY",
    "DefinedFunctions",
    "EvalContext",
    "InSystemHeader",
    "InlineSpecified",
    "Intersect",
    "Join",
    "METRICS",
    "MetricThreshold",
    "NamedRef",
    "OnCallPathFrom",
    "OnCallPathTo",
    "Selector",
    "StatementAggregation",
    "Subtract",
    "VirtualFunctions",
    "lookup",
]
