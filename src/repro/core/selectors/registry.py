"""Selector registry: DSL name → construction from parsed arguments.

Each factory validates arity and argument types, producing readable
:class:`~repro.errors.SpecSemanticError` diagnostics for bad specs.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

from repro.core.selectors.aggregation import StatementAggregation
from repro.core.selectors.base import Selector
from repro.core.selectors.callpath import (
    CallDepth,
    CallPath,
    OnCallPathFrom,
    OnCallPathTo,
)
from repro.core.selectors.coarse import Coarse
from repro.core.selectors.combinators import Complement, Intersect, Join, Subtract
from repro.core.selectors.metrics import MetricThreshold
from repro.core.selectors.structural import (
    ByName,
    ByPath,
    DefinedFunctions,
    InlineSpecified,
    InSystemHeader,
    VirtualFunctions,
)
from repro.errors import SpecSemanticError

#: an argument after AST evaluation: a child selector, string or number
Arg = Union[Selector, str, float]
Factory = Callable[..., Selector]


def _need(args: Sequence[Arg], name: str, *kinds: type) -> None:
    if len(args) != len(kinds):
        raise SpecSemanticError(
            f"{name} expects {len(kinds)} arguments, got {len(args)}"
        )
    for i, (arg, kind) in enumerate(zip(args, kinds)):
        if not isinstance(arg, kind):
            raise SpecSemanticError(
                f"{name}: argument {i + 1} must be {kind.__name__}, "
                f"got {type(arg).__name__}"
            )


def _selectors_only(args: Sequence[Arg], name: str, *, minimum: int = 1) -> list[Selector]:
    if len(args) < minimum:
        raise SpecSemanticError(f"{name} expects at least {minimum} arguments")
    for i, arg in enumerate(args):
        if not isinstance(arg, Selector):
            raise SpecSemanticError(
                f"{name}: argument {i + 1} must be a selector"
            )
    return list(args)  # type: ignore[return-value]


def _metric_factory(metric: str) -> Factory:
    def make(*args: Arg) -> Selector:
        _need(args, metric, str, float, Selector)
        return MetricThreshold(metric, args[0], args[1], args[2])  # type: ignore[arg-type]

    return make


def _make_join(*args: Arg) -> Selector:
    return Join(*_selectors_only(args, "join", minimum=2))


def _make_subtract(*args: Arg) -> Selector:
    sels = _selectors_only(args, "subtract", minimum=2)
    return Subtract(sels[0], *sels[1:])


def _make_intersect(*args: Arg) -> Selector:
    return Intersect(*_selectors_only(args, "intersect", minimum=2))


def _make_complement(*args: Arg) -> Selector:
    _need(args, "complement", Selector)
    return Complement(args[0])  # type: ignore[arg-type]


def _unary(name: str, cls: type) -> Factory:
    def make(*args: Arg) -> Selector:
        _need(args, name, Selector)
        return cls(args[0])

    return make


def _make_by_name(*args: Arg) -> Selector:
    _need(args, "byName", str, Selector)
    return ByName(args[0], args[1])  # type: ignore[arg-type]


def _make_by_path(*args: Arg) -> Selector:
    _need(args, "byPath", str, Selector)
    return ByPath(args[0], args[1])  # type: ignore[arg-type]


def _make_call_path(*args: Arg) -> Selector:
    _need(args, "callPath", Selector, Selector)
    return CallPath(args[0], args[1])  # type: ignore[arg-type]


def _make_call_depth(*args: Arg) -> Selector:
    _need(args, "callDepth", str, float, Selector)
    return CallDepth(args[0], args[1], args[2])  # type: ignore[arg-type]


def _make_coarse(*args: Arg) -> Selector:
    if len(args) == 1:
        _need(args, "coarse", Selector)
        return Coarse(args[0])  # type: ignore[arg-type]
    _need(args, "coarse", Selector, Selector)
    return Coarse(args[0], args[1])  # type: ignore[arg-type]


def _make_statement_aggregation(*args: Arg) -> Selector:
    _need(args, "statementAggregation", float, Selector)
    return StatementAggregation(args[0], args[1])  # type: ignore[arg-type]


DEFAULT_REGISTRY: dict[str, Factory] = {
    "join": _make_join,
    "subtract": _make_subtract,
    "intersect": _make_intersect,
    "complement": _make_complement,
    "inSystemHeader": _unary("inSystemHeader", InSystemHeader),
    "inlineSpecified": _unary("inlineSpecified", InlineSpecified),
    "virtual": _unary("virtual", VirtualFunctions),
    "defined": _unary("defined", DefinedFunctions),
    "byName": _make_by_name,
    "byPath": _make_by_path,
    "onCallPathTo": _unary("onCallPathTo", OnCallPathTo),
    "onCallPathFrom": _unary("onCallPathFrom", OnCallPathFrom),
    "callPath": _make_call_path,
    "callDepth": _make_call_depth,
    "coarse": _make_coarse,
    "statementAggregation": _make_statement_aggregation,
    "flops": _metric_factory("flops"),
    "loopDepth": _metric_factory("loopDepth"),
    "statements": _metric_factory("statements"),
    "callSites": _metric_factory("callSites"),
    "callers": _metric_factory("callers"),
}


def lookup(name: str, registry: dict[str, Factory] | None = None) -> Factory:
    reg = registry or DEFAULT_REGISTRY
    try:
        return reg[name]
    except KeyError:
        raise SpecSemanticError(
            f"unknown selector type {name!r}; available: {sorted(reg)}"
        ) from None
