"""Metric threshold selectors over MetaCG node annotations.

These implement the local-property strategies of Mußler et al. [15] and
the paper's Listing 1 (``flops(">=", 10, ...)``, ``loopDepth(">=", 1,
...)``): filter an input set by comparing one static metric against a
threshold with a DSL-supplied operator string.

Metric functions take ``(ctx, node_id)`` — filtering runs over interned
ids so the hot loop does list indexing instead of name-keyed lookups.
"""

from __future__ import annotations

from typing import Callable

from repro._util import COMPARE_OPS, compare
from repro.core.selectors.base import EvalContext, Selector, union_support
from repro.errors import SpecSemanticError

MetricFn = Callable[[EvalContext, int], float]

#: metrics served straight from a cached NodeMeta column (no per-node call)
_COLUMN_METRICS = {
    "flops": "flops",
    "loopDepth": "loop_depth",
    "statements": "statements",
}


def _meta_metric(attr: str) -> MetricFn:
    return lambda ctx, nid: float(getattr(ctx.graph.meta_of(nid), attr))


METRICS: dict[str, MetricFn] = {
    "flops": _meta_metric("flops"),
    "loopDepth": _meta_metric("loop_depth"),
    "statements": _meta_metric("statements"),
    #: out-degree — how many distinct callees a function has
    "callSites": lambda ctx, nid: float(len(ctx.graph.succ_ids(nid))),
    #: in-degree — how many distinct callers reference the function
    "callers": lambda ctx, nid: float(len(ctx.graph.pred_ids(nid))),
}


class MetricThreshold(Selector):
    """``metric(op, threshold, input)`` for any registered metric."""

    def __init__(self, metric: str, op: str, threshold: float, inner: Selector):
        if metric not in METRICS:
            raise SpecSemanticError(
                f"unknown metric {metric!r}; expected one of {sorted(METRICS)}"
            )
        try:
            compare(op, 0, 0)
        except ValueError as exc:
            raise SpecSemanticError(str(exc)) from exc
        self.metric = metric
        self.op = op
        self.threshold = threshold
        self.inner = inner

    def select_ids(self, ctx: EvalContext) -> set[int]:
        op_fn = COMPARE_OPS[self.op]
        threshold = self.threshold
        attr = _COLUMN_METRICS.get(self.metric)
        if attr is not None:
            column = ctx.graph.meta_column(attr)
            return {
                nid
                for nid in ctx.evaluate_ids(self.inner)
                if op_fn(column[nid], threshold)
            }
        fn = METRICS[self.metric]
        return {
            nid
            for nid in ctx.evaluate_ids(self.inner)
            if op_fn(fn(ctx, nid), threshold)
        }

    def delta_supports(self, ctx: EvalContext):
        supports = ctx.supports_of(self.inner)
        if supports is None:
            return None
        candidates = ctx.evaluate_ids(self.inner)
        if self.metric in _COLUMN_METRICS:
            # metadata read per candidate id
            return (union_support(supports[0], candidates), supports[1])
        # degree metrics (callSites/callers) read candidate adjacency
        return (supports[0], union_support(supports[1], candidates))

    def describe(self) -> str:
        return f"{self.metric}({self.op}{self.threshold:g})"
