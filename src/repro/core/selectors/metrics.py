"""Metric threshold selectors over MetaCG node annotations.

These implement the local-property strategies of Mußler et al. [15] and
the paper's Listing 1 (``flops(">=", 10, ...)``, ``loopDepth(">=", 1,
...)``): filter an input set by comparing one static metric against a
threshold with a DSL-supplied operator string.
"""

from __future__ import annotations

from typing import Callable

from repro._util import compare
from repro.cg.graph import CGNode
from repro.core.selectors.base import EvalContext, Selector
from repro.errors import SpecSemanticError

MetricFn = Callable[[EvalContext, CGNode], float]


def _meta_metric(attr: str) -> MetricFn:
    return lambda ctx, node: float(getattr(node.meta, attr))


METRICS: dict[str, MetricFn] = {
    "flops": _meta_metric("flops"),
    "loopDepth": _meta_metric("loop_depth"),
    "statements": _meta_metric("statements"),
    #: out-degree — how many distinct callees a function has
    "callSites": lambda ctx, node: float(len(ctx.graph.callees_of(node.name))),
    #: in-degree — how many distinct callers reference the function
    "callers": lambda ctx, node: float(len(ctx.graph.callers_of(node.name))),
}


class MetricThreshold(Selector):
    """``metric(op, threshold, input)`` for any registered metric."""

    def __init__(self, metric: str, op: str, threshold: float, inner: Selector):
        if metric not in METRICS:
            raise SpecSemanticError(
                f"unknown metric {metric!r}; expected one of {sorted(METRICS)}"
            )
        try:
            compare(op, 0, 0)
        except ValueError as exc:
            raise SpecSemanticError(str(exc)) from exc
        self.metric = metric
        self.op = op
        self.threshold = threshold
        self.inner = inner

    def select(self, ctx: EvalContext) -> set[str]:
        fn = METRICS[self.metric]
        out = set()
        for name in ctx.evaluate(self.inner):
            if name not in ctx.graph:
                continue
            node = ctx.graph.node(name)
            if compare(self.op, fn(ctx, node), self.threshold):
                out.add(name)
        return out

    def describe(self) -> str:
        return f"{self.metric}({self.op}{self.threshold:g})"
