"""The coarse call-path selector for TALP regions (paper §V-D).

"This selector traverses the call graph from top to bottom.  For each
callee of a selected function node, it is then determined if the
current function is the only caller.  If this is the case, the callee is
removed from the IC.  Optionally, the user can provide a selector
instance for critical functions.  Functions selected by this instance
will be retained in all cases."

The effect on chains like the paper's Listing 3 OpenFOAM excerpt
(``solve → solveSegregated → … → Amul``): pass-through wrappers with a
single caller collapse into the topmost function, leaving a sparse
region set suited to TALP's coarse reports.
"""

from __future__ import annotations

from collections import deque

from repro.core.selectors.base import EvalContext, Selector


class Coarse(Selector):
    """``coarse(input[, critical])``."""

    def __init__(self, inner: Selector, critical: Selector | None = None):
        self.inner = inner
        self.critical = critical

    def select(self, ctx: EvalContext) -> set[str]:
        graph = ctx.graph
        selected = set(ctx.evaluate(self.inner))
        critical = (
            set(ctx.evaluate(self.critical)) if self.critical is not None else set()
        )
        result = set(selected)

        # top-down traversal: start from graph roots (functions without
        # callers, e.g. main and static initialisers), BFS order
        roots = [n for n in sorted(graph.node_names()) if not graph.callers_of(n)]
        visited: set[str] = set()
        queue = deque(roots)
        while queue:
            name = queue.popleft()
            if name in visited:
                continue
            visited.add(name)
            for callee in sorted(graph.callees_of(name)):
                if (
                    callee in result
                    and callee not in critical
                    and graph.callers_of(callee) == {name}
                ):
                    result.discard(callee)
                queue.append(callee)
        return result

    def describe(self) -> str:
        return "coarse" + ("+critical" if self.critical else "")
