"""The coarse call-path selector for TALP regions (paper §V-D).

"This selector traverses the call graph from top to bottom.  For each
callee of a selected function node, it is then determined if the
current function is the only caller.  If this is the case, the callee is
removed from the IC.  Optionally, the user can provide a selector
instance for critical functions.  Functions selected by this instance
will be retained in all cases."

The effect on chains like the paper's Listing 3 OpenFOAM excerpt
(``solve → solveSegregated → … → Amul``): pass-through wrappers with a
single caller collapse into the topmost function, leaving a sparse
region set suited to TALP's coarse reports.
"""

from __future__ import annotations

from collections import deque

from repro.core.selectors.base import EvalContext, Selector


class Coarse(Selector):
    """``coarse(input[, critical])``."""

    def __init__(self, inner: Selector, critical: Selector | None = None):
        self.inner = inner
        self.critical = critical

    def select_ids(self, ctx: EvalContext) -> set[int]:
        graph = ctx.graph
        result = set(ctx.evaluate_ids(self.inner))
        critical = (
            ctx.evaluate_ids(self.critical)
            if self.critical is not None
            else frozenset()
        )

        # top-down traversal: start from graph roots (functions without
        # callers, e.g. main and static initialisers), BFS order
        pred = graph.pred_ids
        succ = graph.succ_ids
        visited = bytearray(graph.id_bound)
        queue = deque()
        for nid in graph.node_ids():
            if not pred(nid):
                visited[nid] = 1
                queue.append(nid)
        while queue:
            nid = queue.popleft()
            for callee in succ(nid):
                if (
                    callee in result
                    and callee not in critical
                    and len(pred(callee)) == 1
                ):
                    result.discard(callee)
                if not visited[callee]:
                    visited[callee] = 1
                    queue.append(callee)
        return result

    def describe(self) -> str:
        return "coarse" + ("+critical" if self.critical else "")
