"""The coarse call-path selector for TALP regions (paper §V-D).

"This selector traverses the call graph from top to bottom.  For each
callee of a selected function node, it is then determined if the
current function is the only caller.  If this is the case, the callee is
removed from the IC.  Optionally, the user can provide a selector
instance for critical functions.  Functions selected by this instance
will be retained in all cases."

The effect on chains like the paper's Listing 3 OpenFOAM excerpt
(``solve → solveSegregated → … → Amul``): pass-through wrappers with a
single caller collapse into the topmost function, leaving a sparse
region set suited to TALP's coarse reports.

The top-down sweep starts from the graph roots (functions without
callers) and — unlike the original BFS, which silently skipped them —
also seeds one representative per component that has no zero-in-degree
node (top-level call cycles, e.g. mutually recursive entry-less
helpers), so every live node is visited exactly once.  Whether a callee
collapses does not depend on visit order (its in-degree and the critical
set are fixed), so with full coverage the sweep reduces to a vectorised
in-degree filter over the graph's CSR snapshot.
"""

from __future__ import annotations

import numpy as np

from repro.core.selectors.base import EvalContext, Selector, union_support


class Coarse(Selector):
    """``coarse(input[, critical])``."""

    def __init__(self, inner: Selector, critical: Selector | None = None):
        self.inner = inner
        self.critical = critical

    def select_ids(self, ctx: EvalContext) -> set[int]:
        result = set(ctx.evaluate_ids(self.inner))
        critical = (
            ctx.evaluate_ids(self.critical)
            if self.critical is not None
            else frozenset()
        )
        # the full sweep (roots + one seed per rootless component) visits
        # every live node, so a callee collapses iff its single caller
        # exists at all: in-degree exactly 1 in the CSR snapshot
        if not result:
            return result
        in_degrees = ctx.graph.csr().in_degrees()
        candidates = np.fromiter(result, dtype=np.int64, count=len(result))
        single_caller = candidates[in_degrees[candidates] == 1]
        collapsed = set(single_caller.tolist()) - critical
        return result - collapsed

    def delta_supports(self, ctx: EvalContext):
        supports = ctx.supports_of(self.inner)
        if supports is None:
            return None
        meta_sup, struct_sup = supports
        if self.critical is not None:
            crit = ctx.supports_of(self.critical)
            if crit is None:
                return None
            meta_sup = union_support(meta_sup, crit[0])
            struct_sup = union_support(struct_sup, crit[1])
        # the collapse test reads each candidate's in-degree
        return (meta_sup, union_support(struct_sup, ctx.evaluate_ids(self.inner)))

    def describe(self) -> str:
        return "coarse" + ("+critical" if self.critical else "")
