"""Score-P filter-file format: parse, serialise, and match.

CaPI writes its instrumentation configurations "as a filter file that is
compatible with the format used by Score-P" (paper §III-A).  We support
the region-name block of that format::

    SCOREP_REGION_NAMES_BEGIN
      EXCLUDE *
      INCLUDE main
      INCLUDE solve_*
    SCOREP_REGION_NAMES_END

Rules are evaluated in order; the last matching INCLUDE/EXCLUDE wins.
Patterns use shell-style wildcards (``fnmatch``).
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.errors import FilterFormatError

BEGIN = "SCOREP_REGION_NAMES_BEGIN"
END = "SCOREP_REGION_NAMES_END"


@dataclass(frozen=True)
class FilterRule:
    include: bool
    pattern: str

    def matches(self, name: str) -> bool:
        if not any(ch in self.pattern for ch in "*?["):
            return name == self.pattern
        return fnmatch.fnmatchcase(name, self.pattern)


@dataclass
class ScorePFilter:
    """An ordered list of include/exclude rules over region names."""

    rules: list[FilterRule] = field(default_factory=list)
    #: names are included when no rule matches (Score-P default)
    default_include: bool = True

    # -- construction ---------------------------------------------------------

    @classmethod
    def include_only(cls, names: Iterable[str]) -> "ScorePFilter":
        """The shape CaPI emits: exclude everything, include the IC."""
        rules = [FilterRule(include=False, pattern="*")]
        rules.extend(FilterRule(include=True, pattern=n) for n in sorted(names))
        return cls(rules=rules)

    def add(self, *, include: bool, pattern: str) -> None:
        self.rules.append(FilterRule(include=include, pattern=pattern))

    # -- matching ---------------------------------------------------------------

    def is_included(self, name: str) -> bool:
        verdict = self.default_include
        for rule in self.rules:
            if rule.matches(name):
                verdict = rule.include
        return verdict

    def included_names(self) -> list[str]:
        """Literal (non-wildcard) include patterns — the IC function set."""
        return [
            r.pattern
            for r in self.rules
            if r.include and not any(ch in r.pattern for ch in "*?[")
        ]

    # -- serialisation --------------------------------------------------------------

    def dumps(self) -> str:
        lines = [BEGIN]
        for rule in self.rules:
            keyword = "INCLUDE" if rule.include else "EXCLUDE"
            lines.append(f"  {keyword} {rule.pattern}")
        lines.append(END)
        return "\n".join(lines) + "\n"

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "ScorePFilter":
        lines = [ln.strip() for ln in text.splitlines()]
        lines = [ln for ln in lines if ln and not ln.startswith("#")]
        if not lines or lines[0] != BEGIN:
            raise FilterFormatError(f"filter must start with {BEGIN}")
        if lines[-1] != END:
            raise FilterFormatError(f"filter must end with {END}")
        rules = []
        for ln in lines[1:-1]:
            m = re.match(r"(INCLUDE|EXCLUDE)\s+(.+)$", ln)
            if not m:
                raise FilterFormatError(f"bad filter line: {ln!r}")
            keyword, patterns = m.groups()
            for pattern in patterns.split():
                rules.append(
                    FilterRule(include=keyword == "INCLUDE", pattern=pattern)
                )
        return cls(rules=rules)

    @classmethod
    def load(cls, path: str | Path) -> "ScorePFilter":
        return cls.loads(Path(path).read_text())
