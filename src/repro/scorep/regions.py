"""Score-P call-path profile data structures.

Score-P organises measurements as a call tree: one node per unique call
path, carrying visit counts and inclusive time.  Exclusive time is
derived on demand (inclusive minus children).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class CallTreeNode:
    """One call-path node (region name in the context of its parent)."""

    name: str
    parent: "CallTreeNode | None" = None
    children: dict[str, "CallTreeNode"] = field(default_factory=dict)
    visits: int = 0
    inclusive_cycles: float = 0.0

    def child(self, name: str) -> "CallTreeNode":
        node = self.children.get(name)
        if node is None:
            node = CallTreeNode(name=name, parent=self)
            self.children[name] = node
        return node

    @property
    def exclusive_cycles(self) -> float:
        return self.inclusive_cycles - sum(
            c.inclusive_cycles for c in self.children.values()
        )

    def walk(self) -> Iterator["CallTreeNode"]:
        """Depth-first iteration over this subtree (self included)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def path(self) -> str:
        parts = []
        node: CallTreeNode | None = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))


@dataclass
class FlatRegion:
    """Aggregated per-region view (summed over call paths)."""

    name: str
    visits: int = 0
    inclusive_cycles: float = 0.0

    @property
    def cycles_per_visit(self) -> float:
        return self.inclusive_cycles / self.visits if self.visits else 0.0


def flatten(root: CallTreeNode) -> dict[str, FlatRegion]:
    """Aggregate a call tree into per-region totals.

    Inclusive times of recursive appearances would double count, so a
    region's inclusive time is only accumulated from call-path nodes
    whose ancestors do not already contain the region.
    """
    flat: dict[str, FlatRegion] = {}

    def ancestors(node: CallTreeNode) -> set[str]:
        names = set()
        cur = node.parent
        while cur is not None:
            names.add(cur.name)
            cur = cur.parent
        return names

    for node in root.walk():
        if node is root:
            continue
        region = flat.setdefault(node.name, FlatRegion(node.name))
        region.visits += node.visits
        if node.name not in ancestors(node):
            region.inclusive_cycles += node.inclusive_cycles
    return flat
