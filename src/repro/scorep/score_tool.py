"""The ``scorep-score`` utility: suggest initial filters from a profile.

The classic semi-automatic workflow (paper §II-B): run once fully
instrumented, then filter out functions "suspected to contribute most of
the overhead, i.e. small, frequently called functions".  Given a flat
profile, regions are scored by estimated measurement overhead relative
to their useful time; offenders go into an EXCLUDE filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.costs import CostModel
from repro.scorep.filter import ScorePFilter
from repro.scorep.regions import FlatRegion


@dataclass(frozen=True)
class ScoreEntry:
    """One scored region, mirroring a `scorep-score -r` row."""

    name: str
    visits: int
    inclusive_cycles: float
    estimated_overhead_cycles: float

    @property
    def overhead_ratio(self) -> float:
        if self.inclusive_cycles <= 0:
            return float("inf") if self.estimated_overhead_cycles > 0 else 0.0
        return self.estimated_overhead_cycles / self.inclusive_cycles


def score_profile(
    flat: dict[str, FlatRegion], cost_model: CostModel | None = None
) -> list[ScoreEntry]:
    """Score every region by estimated per-event overhead, worst first."""
    cm = cost_model or CostModel()
    per_event = cm.scorep_event + cm.patched_dispatch
    entries = [
        ScoreEntry(
            name=region.name,
            visits=region.visits,
            inclusive_cycles=region.inclusive_cycles,
            estimated_overhead_cycles=2.0 * per_event * region.visits,
        )
        for region in flat.values()
    ]
    entries.sort(key=lambda e: (-e.overhead_ratio, -e.visits, e.name))
    return entries


def suggest_filter(
    flat: dict[str, FlatRegion],
    *,
    max_overhead_ratio: float = 0.1,
    cost_model: CostModel | None = None,
) -> ScorePFilter:
    """Build an EXCLUDE filter for regions above the overhead ratio.

    The result is the "initial filter file" scorep-score generates; the
    paper contrasts this context-free heuristic with CaPI's
    call-graph-aware selection.
    """
    filt = ScorePFilter()
    for entry in score_profile(flat, cost_model):
        if entry.overhead_ratio > max_overhead_ratio:
            filt.add(include=False, pattern=entry.name)
    return filt
