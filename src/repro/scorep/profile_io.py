"""Profile persistence: dump/load call-path profiles as JSON.

Used by the refinement-loop example (measure → inspect → adjust) and by
the call-graph validation utility, which consumes observed caller→callee
pairs from a previous profile run.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.scorep.regions import CallTreeNode


def to_dict(node: CallTreeNode) -> dict:
    return {
        "name": node.name,
        "visits": node.visits,
        "inclusive_cycles": node.inclusive_cycles,
        "children": [to_dict(c) for c in sorted(node.children.values(), key=lambda n: n.name)],
    }


def from_dict(data: dict, parent: CallTreeNode | None = None) -> CallTreeNode:
    node = CallTreeNode(name=data["name"], parent=parent)
    node.visits = data.get("visits", 0)
    node.inclusive_cycles = data.get("inclusive_cycles", 0.0)
    for child in data.get("children", []):
        node.children[child["name"]] = from_dict(child, node)
    return node


def save(root: CallTreeNode, path: str | Path) -> None:
    Path(path).write_text(json.dumps(to_dict(root), indent=1))


def load(path: str | Path) -> CallTreeNode:
    return from_dict(json.loads(Path(path).read_text()))


def observed_edges(root: CallTreeNode) -> list[tuple[str, str]]:
    """Caller→callee pairs observed in the profile.

    This is the input to MetaCG's profile-based validation: edges seen
    at runtime that static analysis may have missed.
    """
    pairs: set[tuple[str, str]] = set()
    for node in root.walk():
        if node.parent is not None and node.parent.name != "ROOT":
            pairs.add((node.parent.name, node.name))
    return sorted(pairs)
