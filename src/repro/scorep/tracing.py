"""Score-P tracing mode: timestamped event streams (OTF2 stand-in).

Score-P is "a widely used profiling **and tracing** infrastructure"
(paper §I).  Besides the call-path profile, the measurement runtime can
record a full event trace — enter/leave per region plus MPI operation
markers — which downstream tools (Vampir, Scalasca) consume as OTF2.
We model the event stream and a JSON-lines serialisation.

Tracing costs more per event than profiling (buffer writes, timestamp
acquisition); the cost model charges ``TRACE_EVENT_EXTRA`` on top of the
normal handler cost, which is why production measurements filter first.
"""

from __future__ import annotations

import enum
import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.execution.clock import VirtualClock

#: additional per-event cycles for trace-buffer writes
TRACE_EVENT_EXTRA = 110.0


class TraceEventKind(enum.Enum):
    ENTER = "ENTER"
    LEAVE = "LEAVE"
    MPI = "MPI"


@dataclass(frozen=True)
class TraceEvent:
    kind: TraceEventKind
    region: str
    timestamp_cycles: float


@dataclass(frozen=True)
class RankedTraceEvent:
    """One trace event tagged with its origin rank (OTF2 location).

    The multi-rank merge works on these: the rank tag is what lets a
    Vampir-style timeline keep per-rank lanes after the per-rank streams
    are interleaved into one global event order.
    """

    rank: int
    kind: TraceEventKind
    region: str
    timestamp_cycles: float

    def untagged(self) -> TraceEvent:
        return TraceEvent(self.kind, self.region, self.timestamp_cycles)


def tag_events(
    rank: int, events: Iterable[TraceEvent]
) -> list[RankedTraceEvent]:
    """Tag one rank's event stream with its rank (OTF2 location id)."""
    return [
        RankedTraceEvent(rank, ev.kind, ev.region, ev.timestamp_cycles)
        for ev in events
    ]


def merge_streams(
    streams: Sequence[Sequence[RankedTraceEvent]],
) -> list[RankedTraceEvent]:
    """Interleave per-rank streams into one globally ordered timeline.

    Each input stream must be timestamp-monotone (which per-rank tracer
    output always is); the merge is a k-way heap merge ordered by
    ``(timestamp, rank)``, so cross-rank timestamp ties deterministically
    break toward the lower rank and the result is bit-stable regardless
    of which backend produced the inputs.
    """
    return list(
        heapq.merge(*streams, key=lambda ev: (ev.timestamp_cycles, ev.rank))
    )


@dataclass
class ScorePTracer:
    """Event-trace recorder, attachable next to the profile measurement."""

    clock: VirtualClock
    events: list[TraceEvent] = field(default_factory=list)
    #: flush threshold: a full buffer is flushed to `flushed` wholesale
    buffer_size: int = 1 << 16
    flushed: list[TraceEvent] = field(default_factory=list)
    flush_count: int = 0

    # -- recording --------------------------------------------------------------

    def enter(self, region: str) -> None:
        self._record(TraceEventKind.ENTER, region)

    def leave(self, region: str) -> None:
        self._record(TraceEventKind.LEAVE, region)

    def mpi(self, op: str) -> None:
        self._record(TraceEventKind.MPI, op)

    def _record(self, kind: TraceEventKind, region: str) -> None:
        self.clock.advance(TRACE_EVENT_EXTRA)
        self.events.append(TraceEvent(kind, region, self.clock.now()))
        if len(self.events) >= self.buffer_size:
            self.flushed.extend(self.events)
            self.events.clear()
            self.flush_count += 1

    # -- results ----------------------------------------------------------------

    def all_events(self) -> list[TraceEvent]:
        return [*self.flushed, *self.events]

    def save(self, path: str | Path) -> int:
        events = self.all_events()
        with open(path, "w") as fh:
            for ev in events:
                fh.write(
                    json.dumps(
                        {"k": ev.kind.value, "r": ev.region, "t": ev.timestamp_cycles}
                    )
                    + "\n"
                )
        return len(events)

    @classmethod
    def load(cls, path: str | Path) -> list[TraceEvent]:
        out = []
        for line in Path(path).read_text().splitlines():
            data = json.loads(line)
            out.append(
                TraceEvent(TraceEventKind(data["k"]), data["r"], data["t"])
            )
        return out


def validate_trace(events: list[TraceEvent]) -> list[str]:
    """Consistency checks a trace analyser would run.

    Returns a list of violation descriptions: non-monotonic timestamps
    and unbalanced enter/leave nesting per region stream.  Each defect
    is reported exactly once: a LEAVE whose region sits deeper in the
    stack resynchronises by popping through it (the skipped inner
    regions are implicitly closed, like stack unwinding), so one
    out-of-order LEAVE no longer leaves the mismatched region on the
    stack forever and floods the report with spurious ``unclosed
    region`` entries for every frame above it.
    """
    problems: list[str] = []
    last_t = -1.0
    stack: list[str] = []
    for ev in events:
        if ev.timestamp_cycles < last_t:
            problems.append(f"timestamp regression at {ev.region}")
        last_t = ev.timestamp_cycles
        if ev.kind is TraceEventKind.ENTER:
            stack.append(ev.region)
        elif ev.kind is TraceEventKind.LEAVE:
            if stack and stack[-1] == ev.region:
                stack.pop()
            elif ev.region in stack:
                # out-of-order LEAVE of an outer region: resync by
                # unwinding to it so later events validate normally
                skipped = 0
                while stack[-1] != ev.region:
                    stack.pop()
                    skipped += 1
                stack.pop()
                problems.append(
                    f"unbalanced LEAVE {ev.region} "
                    f"(implicitly closed {skipped} inner region(s))"
                )
            else:
                problems.append(f"unbalanced LEAVE {ev.region}")
    problems.extend(f"unclosed region {r}" for r in stack)
    return problems
