"""Score-P tracing mode: timestamped event streams (OTF2 stand-in).

Score-P is "a widely used profiling **and tracing** infrastructure"
(paper §I).  Besides the call-path profile, the measurement runtime can
record a full event trace — enter/leave per region plus MPI operation
markers — which downstream tools (Vampir, Scalasca) consume as OTF2.
We model the event stream and a JSON-lines serialisation.

Tracing costs more per event than profiling (buffer writes, timestamp
acquisition); the cost model charges ``TRACE_EVENT_EXTRA`` on top of the
normal handler cost, which is why production measurements filter first.
"""

from __future__ import annotations

import enum
import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import CapiError
from repro.execution.clock import VirtualClock

#: additional per-event cycles for trace-buffer writes
TRACE_EVENT_EXTRA = 110.0


class TraceEventKind(enum.Enum):
    ENTER = "ENTER"
    LEAVE = "LEAVE"
    MPI = "MPI"


@dataclass(frozen=True)
class TraceEvent:
    kind: TraceEventKind
    region: str
    timestamp_cycles: float
    #: matched message id for point-to-point MPI markers: the k-th send
    #: on a rank carries mid=k, pairing with the k-th receive on its
    #: SPMD ring partner (see :mod:`repro.simmpi.messages`).  ``None``
    #: for non-message events.
    mid: "int | None" = None


@dataclass(frozen=True)
class RankedTraceEvent:
    """One trace event tagged with its origin rank (OTF2 location).

    The multi-rank merge works on these: the rank tag is what lets a
    Vampir-style timeline keep per-rank lanes after the per-rank streams
    are interleaved into one global event order.
    """

    rank: int
    kind: TraceEventKind
    region: str
    timestamp_cycles: float
    mid: "int | None" = None

    def untagged(self) -> TraceEvent:
        return TraceEvent(self.kind, self.region, self.timestamp_cycles, self.mid)


def tag_events(
    rank: int, events: Iterable[TraceEvent]
) -> list[RankedTraceEvent]:
    """Tag one rank's event stream with its rank (OTF2 location id)."""
    return [
        RankedTraceEvent(rank, ev.kind, ev.region, ev.timestamp_cycles, ev.mid)
        for ev in events
    ]


def merge_streams(
    streams: Sequence[Sequence[RankedTraceEvent]],
) -> list[RankedTraceEvent]:
    """Interleave per-rank streams into one globally ordered timeline.

    Each input stream must be timestamp-monotone (which per-rank tracer
    output always is); the merge is a k-way heap merge ordered by
    ``(timestamp, rank)``, so cross-rank timestamp ties deterministically
    break toward the lower rank and the result is bit-stable regardless
    of which backend produced the inputs.
    """
    return list(
        heapq.merge(*streams, key=lambda ev: (ev.timestamp_cycles, ev.rank))
    )


@dataclass
class ScorePTracer:
    """Event-trace recorder, attachable next to the profile measurement.

    When a ``writer`` is attached (see :class:`repro.trace.store.TraceWriter`)
    full buffers spill to disk instead of accumulating in ``flushed``:
    memory stays bounded at ``buffer_size`` events and the complete
    stream only exists in the location file.  ``all_events()`` is then
    unavailable — read the trace back via the store.
    """

    clock: VirtualClock
    events: list[TraceEvent] = field(default_factory=list)
    #: flush threshold: a full buffer is flushed to `flushed` wholesale
    buffer_size: int = 1 << 16
    flushed: list[TraceEvent] = field(default_factory=list)
    flush_count: int = 0
    #: optional on-disk sink (duck-typed: write_events / close)
    writer: object | None = None
    #: events spilled to the writer so far
    spilled: int = 0

    # -- recording --------------------------------------------------------------

    def enter(self, region: str) -> None:
        self._record(TraceEventKind.ENTER, region)

    def leave(self, region: str) -> None:
        self._record(TraceEventKind.LEAVE, region)

    def mpi(self, op: str, *, mid: int | None = None) -> None:
        self._record(TraceEventKind.MPI, op, mid=mid)

    def _record(
        self, kind: TraceEventKind, region: str, mid: int | None = None
    ) -> None:
        self.clock.advance(TRACE_EVENT_EXTRA)
        self.events.append(TraceEvent(kind, region, self.clock.now(), mid))
        if len(self.events) >= self.buffer_size:
            if self.writer is not None:
                self.writer.write_events(self.events)
                self.spilled += len(self.events)
            else:
                self.flushed.extend(self.events)
            self.events.clear()
            self.flush_count += 1

    # -- results ----------------------------------------------------------------

    def all_events(self) -> list[TraceEvent]:
        if self.writer is not None:
            raise CapiError(
                "trace events were spilled to disk; read them back via "
                "repro.trace.store instead of all_events()"
            )
        return [*self.flushed, *self.events]

    def close_writer(self):
        """Flush the tail buffer and close the attached on-disk writer.

        Returns the writer's :class:`~repro.trace.store.LocationMeta`.
        """
        if self.writer is None:
            raise CapiError("no trace writer attached")
        if self.events:
            self.writer.write_events(self.events)
            self.spilled += len(self.events)
            self.events.clear()
        return self.writer.close()

    def save(self, path: str | Path) -> int:
        events = self.all_events()
        with open(path, "w") as fh:
            for ev in events:
                record = {
                    "k": ev.kind.value, "r": ev.region, "t": ev.timestamp_cycles
                }
                if ev.mid is not None:
                    record["m"] = ev.mid
                fh.write(json.dumps(record) + "\n")
        return len(events)

    @classmethod
    def load(cls, path: str | Path) -> list[TraceEvent]:
        out = []
        for line in Path(path).read_text().splitlines():
            data = json.loads(line)
            out.append(
                TraceEvent(
                    TraceEventKind(data["k"]), data["r"], data["t"],
                    data.get("m"),
                )
            )
        return out


@dataclass(frozen=True)
class TraceIssue:
    """One machine-readable defect found by trace validation.

    ``code`` is stable (CI asserts on it); ``detail`` is the human
    rendering, and ``str(issue)`` returns it so legacy string handling
    keeps working.  ``rank`` is filled in by the multi-rank validators.
    """

    code: str
    region: str
    detail: str
    rank: int | None = None

    def __str__(self) -> str:
        return self.detail


def validate_trace(events: Iterable[TraceEvent]) -> list[TraceIssue]:
    """Consistency checks a trace analyser would run.

    Returns a list of :class:`TraceIssue` records: non-monotonic
    timestamps and unbalanced enter/leave nesting per region stream.
    Each defect is reported exactly once: a LEAVE whose region sits
    deeper in the stack resynchronises by popping through it (the
    skipped inner regions are implicitly closed, like stack unwinding),
    so one out-of-order LEAVE no longer leaves the mismatched region on
    the stack forever and floods the report with spurious
    ``unclosed-region`` entries for every frame above it.
    """
    problems: list[TraceIssue] = []
    last_t = -1.0
    stack: list[str] = []
    for ev in events:
        if ev.timestamp_cycles < last_t:
            problems.append(
                TraceIssue(
                    "timestamp-regression", ev.region,
                    f"timestamp regression at {ev.region}",
                )
            )
        last_t = ev.timestamp_cycles
        if ev.kind is TraceEventKind.ENTER:
            stack.append(ev.region)
        elif ev.kind is TraceEventKind.LEAVE:
            if stack and stack[-1] == ev.region:
                stack.pop()
            elif ev.region in stack:
                # out-of-order LEAVE of an outer region: resync by
                # unwinding to it so later events validate normally
                skipped = 0
                while stack[-1] != ev.region:
                    stack.pop()
                    skipped += 1
                stack.pop()
                problems.append(
                    TraceIssue(
                        "unbalanced-leave-resync", ev.region,
                        f"unbalanced LEAVE {ev.region} "
                        f"(implicitly closed {skipped} inner region(s))",
                    )
                )
            else:
                problems.append(
                    TraceIssue(
                        "unbalanced-leave", ev.region,
                        f"unbalanced LEAVE {ev.region}",
                    )
                )
    problems.extend(
        TraceIssue("unclosed-region", r, f"unclosed region {r}") for r in stack
    )
    return problems
