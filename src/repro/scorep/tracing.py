"""Score-P tracing mode: timestamped event streams (OTF2 stand-in).

Score-P is "a widely used profiling **and tracing** infrastructure"
(paper §I).  Besides the call-path profile, the measurement runtime can
record a full event trace — enter/leave per region plus MPI operation
markers — which downstream tools (Vampir, Scalasca) consume as OTF2.
We model the event stream and a JSON-lines serialisation.

Tracing costs more per event than profiling (buffer writes, timestamp
acquisition); the cost model charges ``TRACE_EVENT_EXTRA`` on top of the
normal handler cost, which is why production measurements filter first.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.execution.clock import VirtualClock

#: additional per-event cycles for trace-buffer writes
TRACE_EVENT_EXTRA = 110.0


class TraceEventKind(enum.Enum):
    ENTER = "ENTER"
    LEAVE = "LEAVE"
    MPI = "MPI"


@dataclass(frozen=True)
class TraceEvent:
    kind: TraceEventKind
    region: str
    timestamp_cycles: float


@dataclass
class ScorePTracer:
    """Event-trace recorder, attachable next to the profile measurement."""

    clock: VirtualClock
    events: list[TraceEvent] = field(default_factory=list)
    #: flush threshold: a full buffer is flushed to `flushed` wholesale
    buffer_size: int = 1 << 16
    flushed: list[TraceEvent] = field(default_factory=list)
    flush_count: int = 0

    # -- recording --------------------------------------------------------------

    def enter(self, region: str) -> None:
        self._record(TraceEventKind.ENTER, region)

    def leave(self, region: str) -> None:
        self._record(TraceEventKind.LEAVE, region)

    def mpi(self, op: str) -> None:
        self._record(TraceEventKind.MPI, op)

    def _record(self, kind: TraceEventKind, region: str) -> None:
        self.clock.advance(TRACE_EVENT_EXTRA)
        self.events.append(TraceEvent(kind, region, self.clock.now()))
        if len(self.events) >= self.buffer_size:
            self.flushed.extend(self.events)
            self.events.clear()
            self.flush_count += 1

    # -- results ----------------------------------------------------------------

    def all_events(self) -> list[TraceEvent]:
        return [*self.flushed, *self.events]

    def save(self, path: str | Path) -> int:
        events = self.all_events()
        with open(path, "w") as fh:
            for ev in events:
                fh.write(
                    json.dumps(
                        {"k": ev.kind.value, "r": ev.region, "t": ev.timestamp_cycles}
                    )
                    + "\n"
                )
        return len(events)

    @classmethod
    def load(cls, path: str | Path) -> list[TraceEvent]:
        out = []
        for line in Path(path).read_text().splitlines():
            data = json.loads(line)
            out.append(
                TraceEvent(TraceEventKind(data["k"]), data["r"], data["t"])
            )
        return out


def validate_trace(events: list[TraceEvent]) -> list[str]:
    """Consistency checks a trace analyser would run.

    Returns a list of violation descriptions: non-monotonic timestamps
    and unbalanced enter/leave nesting per region stream.
    """
    problems: list[str] = []
    last_t = -1.0
    stack: list[str] = []
    for ev in events:
        if ev.timestamp_cycles < last_t:
            problems.append(f"timestamp regression at {ev.region}")
        last_t = ev.timestamp_cycles
        if ev.kind is TraceEventKind.ENTER:
            stack.append(ev.region)
        elif ev.kind is TraceEventKind.LEAVE:
            if not stack or stack[-1] != ev.region:
                problems.append(f"unbalanced LEAVE {ev.region}")
            else:
                stack.pop()
    problems.extend(f"unclosed region {r}" for r in stack)
    return problems
