"""The Score-P measurement runtime.

Receives region enter/exit events (from the DynCaPI bridge or a static
instrumenter), maintains the call-path profile, and charges its own
bookkeeping cost to the virtual clock — in-line, the way a real
measurement system steals application cycles.

Runtime filtering is supported with the semantics the paper describes
(§II-B): filtered regions are not recorded, but the probe invocation and
the filter-list check are still paid for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScorePError
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.scorep.filter import ScorePFilter
from repro.scorep.regions import CallTreeNode, FlatRegion, flatten

#: cost of cross-checking the runtime filter list for one event
RUNTIME_FILTER_CHECK = 90.0


@dataclass
class _OpenFrame:
    node: CallTreeNode
    entered_at: float


@dataclass
class ScorePMeasurement:
    """One process-local Score-P measurement session."""

    clock: VirtualClock
    cost_model: CostModel = field(default_factory=CostModel)
    #: optional runtime filter; probes stay active but filtered regions
    #: are not recorded
    runtime_filter: ScorePFilter | None = None
    root: CallTreeNode = field(default_factory=lambda: CallTreeNode("ROOT"))
    total_events: int = 0
    filtered_events: int = 0
    #: regions whose exit arrived without a matching enter (should stay 0)
    unbalanced_exits: int = 0
    mpi_cycles: float = 0.0
    mpi_calls: int = 0
    _stack: list[_OpenFrame] = field(default_factory=list)
    _filtered_depth: int = 0

    # -- events ----------------------------------------------------------------

    def region_enter(self, name: str) -> None:
        self.total_events += 1
        self.clock.advance(self.cost_model.scorep_event)
        if self._is_filtered(name):
            self.filtered_events += 1
            self._filtered_depth += 1
            return
        parent = self._stack[-1].node if self._stack else self.root
        node = parent.child(name)
        node.visits += 1
        self._stack.append(_OpenFrame(node=node, entered_at=self.clock.now()))

    def region_exit(self, name: str) -> None:
        self.total_events += 1
        self.clock.advance(self.cost_model.scorep_event)
        if self._filtered_depth > 0 and self._is_filtered(name):
            self._filtered_depth -= 1
            self.filtered_events += 1
            return
        if not self._stack:
            self.unbalanced_exits += 1
            return
        frame = self._stack[-1]
        if frame.node.name != name:
            # exit does not match the open region: tolerate (tail calls
            # produce this in real XRay) but record the imbalance
            self.unbalanced_exits += 1
            return
        self._stack.pop()
        frame.node.inclusive_cycles += self.clock.now() - frame.entered_at

    # -- PMPI interception -------------------------------------------------------

    def on_mpi_call(self, op: str, cost_cycles: float) -> float:
        """Score-P's PMPI wrapper: constant bookkeeping per MPI call."""
        self.mpi_calls += 1
        self.mpi_cycles += cost_cycles
        return self.cost_model.scorep_mpi_wrapper

    def estimate_extra(self) -> float:
        """Per-MPI-call overhead estimate for analytic charging."""
        return self.cost_model.scorep_mpi_wrapper

    # -- results ---------------------------------------------------------------------

    def finalize(self) -> None:
        """Close out any regions still open at program end."""
        now = self.clock.now()
        while self._stack:
            frame = self._stack.pop()
            frame.node.inclusive_cycles += now - frame.entered_at

    def profile(self) -> CallTreeNode:
        if self._stack:
            raise ScorePError(
                f"profile requested with {len(self._stack)} regions still "
                f"open; call finalize() first"
            )
        return self.root

    def flat_profile(self) -> dict[str, FlatRegion]:
        return flatten(self.profile())

    # -- internals ----------------------------------------------------------------------

    def _is_filtered(self, name: str) -> bool:
        if self.runtime_filter is None:
            return False
        self.clock.advance(RUNTIME_FILTER_CHECK)
        return not self.runtime_filter.is_included(name)
