"""Score-P substrate: call-path profiling, filters, scoring, resolution."""

from repro.scorep.filter import FilterRule, ScorePFilter
from repro.scorep.measurement import ScorePMeasurement
from repro.scorep.regions import CallTreeNode, FlatRegion, flatten
from repro.scorep.resolution import AddressResolver
from repro.scorep.score_tool import ScoreEntry, score_profile, suggest_filter
from repro.scorep.tracing import ScorePTracer, TraceEvent, TraceEventKind, validate_trace

__all__ = [
    "ScorePTracer",
    "TraceEvent",
    "TraceEventKind",
    "validate_trace",
    "AddressResolver",
    "CallTreeNode",
    "FilterRule",
    "FlatRegion",
    "ScoreEntry",
    "ScorePFilter",
    "ScorePMeasurement",
    "flatten",
    "score_profile",
    "suggest_filter",
]
