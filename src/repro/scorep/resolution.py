"""Address→name resolution for the generic compiler interface.

With ``-finstrument-functions``-style instrumentation, Score-P only
receives function *addresses* and must resolve names itself by mapping
the executable binary.  The paper's key limitation (§V-C.1): "Score-P is
unable to resolve addresses from shared objects" this way.  DynCaPI's
symbol-injection workaround supplies translated symbol addresses for
every loaded DSO, restoring resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.loader import DynamicLoader, LoadedObject


@dataclass
class AddressResolver:
    """Resolve instruction addresses to function names.

    Out of the box only the main executable's symbols are known.
    :meth:`inject_symbols` adds externally supplied (name, absolute
    address, size) triples — the DynCaPI symbol-injection path.
    """

    loader: DynamicLoader
    executable_name: str
    #: absolute address -> (name, size), sorted lazily for lookup
    _injected: dict[int, tuple[str, int]] = field(default_factory=dict)
    unresolved_queries: int = 0
    resolved_queries: int = 0

    def resolve(self, address: int) -> str | None:
        """Name covering ``address``, or None (counted) if unknown."""
        exe = self.loader.loaded.get(self.executable_name)
        if exe is not None and exe.region.contains(address):
            sym = exe.binary.symtab.at_offset(address - exe.base)
            if sym is not None:
                self.resolved_queries += 1
                return sym.name
        for start, (name, size) in self._injected.items():
            if start <= address < start + max(size, 1):
                self.resolved_queries += 1
                return name
        self.unresolved_queries += 1
        return None

    def inject_symbols(self, triples: list[tuple[str, int, int]]) -> None:
        """Add (name, absolute address, size) entries from DynCaPI."""
        for name, addr, size in triples:
            self._injected[addr] = (name, size)

    def can_resolve_object(self, lo: LoadedObject) -> bool:
        """Whether any address of the given object would resolve."""
        if lo.binary.name == self.executable_name:
            return True
        return any(
            lo.region.contains(addr) for addr in self._injected
        )
