"""Address→name resolution for the generic compiler interface.

With ``-finstrument-functions``-style instrumentation, Score-P only
receives function *addresses* and must resolve names itself by mapping
the executable binary.  The paper's key limitation (§V-C.1): "Score-P is
unable to resolve addresses from shared objects" this way.  DynCaPI's
symbol-injection workaround supplies translated symbol addresses for
every loaded DSO, restoring resolution.

Resolution sits on the execution engine's per-event hot path (one query
per region enter/exit), so lookups are memoised per address and the
injected-symbol ranges are bisected over a sorted index instead of
scanned linearly.  :meth:`inject_symbols` invalidates both.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.program.loader import DynamicLoader, LoadedObject

#: cache-miss sentinel (``None`` is a valid cached result)
_MISS = object()


@dataclass
class AddressResolver:
    """Resolve instruction addresses to function names.

    Out of the box only the main executable's symbols are known.
    :meth:`inject_symbols` adds externally supplied (name, absolute
    address, size) triples — the DynCaPI symbol-injection path.
    """

    loader: DynamicLoader
    executable_name: str
    #: absolute address -> (name, size), indexed lazily for lookup
    _injected: dict[int, tuple[str, int]] = field(default_factory=dict)
    unresolved_queries: int = 0
    resolved_queries: int = 0
    #: address -> name-or-None memo (hot path: sled addresses repeat)
    _memo: dict[int, str | None] = field(default_factory=dict, repr=False)
    #: sorted (start, end, name) index over ``_injected``
    _index: tuple[list[int], list[tuple[int, str]]] | None = field(
        default=None, repr=False
    )

    def resolve(self, address: int) -> str | None:
        """Name covering ``address``, or None (counted) if unknown."""
        name = self._memo.get(address, _MISS)
        if name is _MISS:
            name = self._resolve_uncached(address)
            self._memo[address] = name
        if name is None:
            self.unresolved_queries += 1
        else:
            self.resolved_queries += 1
        return name

    def _resolve_uncached(self, address: int) -> str | None:
        exe = self.loader.loaded.get(self.executable_name)
        if exe is not None and exe.region.contains(address):
            sym = exe.binary.symtab.at_offset(address - exe.base)
            if sym is not None:
                return sym.name
        starts, payloads = self._injected_index()
        pos = bisect_right(starts, address) - 1
        if pos >= 0:
            end, name = payloads[pos]
            if address < end:
                return name
        return None

    def _injected_index(self) -> tuple[list[int], list[tuple[int, str]]]:
        index = self._index
        if index is None:
            starts = sorted(self._injected)
            payloads = []
            for start in starts:
                name, size = self._injected[start]
                payloads.append((start + max(size, 1), name))
            index = (starts, payloads)
            self._index = index
        return index

    def inject_symbols(self, triples: list[tuple[str, int, int]]) -> None:
        """Add (name, absolute address, size) entries from DynCaPI."""
        for name, addr, size in triples:
            self._injected[addr] = (name, size)
        self._index = None
        self._memo.clear()

    def can_resolve_object(self, lo: LoadedObject) -> bool:
        """Whether any address of the given object would resolve."""
        if lo.binary.name == self.executable_name:
            return True
        return any(
            lo.region.contains(addr) for addr in self._injected
        )
